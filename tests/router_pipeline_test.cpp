// Router micro-architecture timing and flow-control tests, run on small
// baseline meshes (pipeline: RC -> VA+SA -> ST, one cycle each, 1-cycle
// links; Table I: 3-cycle router).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "noc/network.hpp"
#include "routing/yx_routing.hpp"

namespace flov {
namespace {

struct Harness {
  explicit Harness(NocParams p)
      : params(p), geom(p.width, p.height), routing(geom),
        net(p, &routing, nullptr) {
    net.set_eject_callback([this](const PacketRecord& r) {
      records.push_back(r);
    });
  }

  void run(Cycle cycles) {
    for (Cycle c = 0; c < cycles; ++c) net.step(now++);
  }

  NocParams params;
  MeshGeometry geom;
  YxRouting routing;
  Network net;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

NocParams small_params() {
  NocParams p;
  p.width = 4;
  p.height = 4;
  p.num_vnets = 1;
  p.vcs_per_vnet = 4;
  p.escape_vc = 3;
  p.buffer_depth = 6;
  p.enable_escape_diversion = false;
  return p;
}

PacketDescriptor pkt(NodeId s, NodeId d, int size, Cycle gen) {
  PacketDescriptor p;
  p.src = s;
  p.dest = d;
  p.size_flits = size;
  p.gen_cycle = gen;
  return p;
}

TEST(RouterPipeline, SingleFlitSingleHopLatency) {
  Harness h(small_params());
  // Node 0 -> node 1: adjacent. Timeline for the head flit:
  //   t0: NI sends into local port (1-cycle channel)
  //   t1: buffer write at router 0; t2 RC; t3 VA+SA; t4 ST -> link
  //   t5: buffer write at router 1; t6 RC; t7 VA+SA; t8 ST -> eject link
  //   t9: NI consumes.
  h.net.enqueue(pkt(0, 1, 1, 0));
  h.run(20);
  ASSERT_EQ(h.records.size(), 1u);
  const auto& r = h.records[0];
  EXPECT_EQ(r.eject_cycle - r.gen_cycle, 9u);
  EXPECT_EQ(r.router_hops, 2);  // both routers' pipelines
  EXPECT_EQ(r.link_hops, 1);    // one mesh link
  EXPECT_EQ(r.flov_hops, 0);
}

TEST(RouterPipeline, PerHopCostIsFourCycles) {
  // Each extra hop adds 3 pipeline cycles + 1 link cycle.
  std::map<int, Cycle> latency_by_hops;
  for (NodeId dest : {1, 2, 3}) {
    Harness h(small_params());
    h.net.enqueue(pkt(0, dest, 1, 0));
    h.run(30);
    ASSERT_EQ(h.records.size(), 1u);
    latency_by_hops[h.geom.hops(0, dest)] = h.records[0].total_latency();
  }
  EXPECT_EQ(latency_by_hops[2] - latency_by_hops[1], 4u);
  EXPECT_EQ(latency_by_hops[3] - latency_by_hops[2], 4u);
}

TEST(RouterPipeline, SerializationAddsOneCyclePerExtraFlit) {
  std::map<int, Cycle> latency_by_size;
  for (int size : {1, 2, 4, 6}) {
    Harness h(small_params());
    h.net.enqueue(pkt(0, 5, size, 0));
    h.run(40);
    ASSERT_EQ(h.records.size(), 1u);
    latency_by_size[size] = h.records[0].total_latency();
  }
  EXPECT_EQ(latency_by_size[2] - latency_by_size[1], 1u);
  EXPECT_EQ(latency_by_size[4] - latency_by_size[1], 3u);
  EXPECT_EQ(latency_by_size[6] - latency_by_size[1], 5u);
}

TEST(RouterPipeline, PacketLargerThanBufferStreams) {
  // Wormhole: a 10-flit packet flows through 6-deep buffers.
  Harness h(small_params());
  h.net.enqueue(pkt(0, 3, 10, 0));
  h.run(60);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.net.total_injected_flits(), 10u);
  EXPECT_EQ(h.net.total_ejected_flits(), 10u);
}

TEST(RouterPipeline, BackToBackPacketsPipeline) {
  // Two packets along the same path: the second should not pay the full
  // latency again (pipelining), and both arrive intact.
  Harness h(small_params());
  h.net.enqueue(pkt(0, 3, 4, 0));
  h.net.enqueue(pkt(0, 3, 4, 0));
  h.run(60);
  ASSERT_EQ(h.records.size(), 2u);
  const Cycle l0 = h.records[0].total_latency();
  const Cycle l1 = h.records[1].total_latency();
  EXPECT_LT(l1, l0 + 8);  // far less than a full second traversal
}

TEST(RouterPipeline, ManyPacketsConserveFlits) {
  Harness h(small_params());
  int expected_flits = 0;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      h.net.enqueue(pkt(s, d, 4, 0));
      expected_flits += 4;
    }
  }
  h.run(3000);
  EXPECT_TRUE(h.net.idle());
  EXPECT_EQ(h.records.size(), 240u);
  EXPECT_EQ(h.net.total_injected_flits(),
            static_cast<std::uint64_t>(expected_flits));
  EXPECT_EQ(h.net.total_ejected_flits(),
            static_cast<std::uint64_t>(expected_flits));
}

TEST(RouterPipeline, CreditBackpressureNeverOverflows) {
  // Saturate one destination from many sources; buffer-overflow asserts
  // inside the router would fire if credits were wrong.
  Harness h(small_params());
  for (int round = 0; round < 20; ++round) {
    for (NodeId s = 1; s < 16; ++s) h.net.enqueue(pkt(s, 0, 4, 0));
  }
  h.run(8000);
  EXPECT_TRUE(h.net.idle());
  EXPECT_EQ(h.records.size(), 20u * 15u);
}

TEST(RouterPipeline, FlitOrderWithinPacketPreserved) {
  // Intercept at the NI: record.size_flits count arrived since the NI
  // checks head/tail pairing internally; additionally ensure per-packet
  // payload integrity survived heavy interleaving.
  Harness h(small_params());
  for (int i = 0; i < 50; ++i) {
    auto p = pkt(0, 15, 4, 0);
    p.payload = 1000 + i;
    h.net.enqueue(p);
  }
  h.run(3000);
  ASSERT_EQ(h.records.size(), 50u);
  std::set<std::uint64_t> seen;
  for (const auto& r : h.records) {
    EXPECT_EQ(r.size_flits, 4);
    seen.insert(r.payload);
  }
  EXPECT_EQ(seen.size(), 50u);  // every packet completed exactly once
}

TEST(RouterPipeline, SelfAddressedPacketRoundTripsThroughLocalPort) {
  Harness h(small_params());
  h.net.enqueue(pkt(5, 5, 2, 0));
  h.run(20);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].link_hops, 0);
  EXPECT_EQ(h.records[0].router_hops, 1);
}

TEST(RouterPipeline, VnetsIsolateVcClasses) {
  NocParams p = small_params();
  p.num_vnets = 3;
  Harness h(p);
  for (VnetId v = 0; v < 3; ++v) {
    auto d = pkt(0, 15, 4, 0);
    d.vnet = v;
    h.net.enqueue(d);
  }
  h.run(200);
  ASSERT_EQ(h.records.size(), 3u);
  std::set<VnetId> vnets;
  for (const auto& r : h.records) vnets.insert(r.vnet);
  EXPECT_EQ(vnets.size(), 3u);
}

class MeshSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MeshSizes, AllToAllDelivery) {
  NocParams p = small_params();
  p.width = GetParam().first;
  p.height = GetParam().second;
  Harness h(p);
  const int n = p.width * p.height;
  int count = 0;
  for (NodeId s = 0; s < n; ++s) {
    const NodeId d = (s + n / 2 + 1) % n;
    if (d == s) continue;
    h.net.enqueue(pkt(s, d, 4, 0));
    ++count;
  }
  h.run(2000);
  EXPECT_TRUE(h.net.idle());
  EXPECT_EQ(static_cast<int>(h.records.size()), count);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSizes,
    ::testing::Values(std::pair<int, int>{2, 2}, std::pair<int, int>{3, 3},
                      std::pair<int, int>{4, 4}, std::pair<int, int>{8, 8},
                      std::pair<int, int>{4, 8}, std::pair<int, int>{8, 4},
                      std::pair<int, int>{2, 8}));

}  // namespace
}  // namespace flov
