// Tests for the up*/down* route computation used by Router Parking.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "routing/updown.hpp"

namespace flov {
namespace {

std::vector<bool> all_on(int n) { return std::vector<bool>(n, true); }

TEST(UpDown, FullMeshAllReachable) {
  MeshGeometry g(4, 4);
  UpDownRoutes r(g, all_on(16));
  EXPECT_TRUE(r.all_powered_connected());
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_TRUE(r.reachable(a, b)) << a << "->" << b;
    }
  }
}

TEST(UpDown, RootIsSmallestPoweredId) {
  MeshGeometry g(4, 4);
  std::vector<bool> p = all_on(16);
  p[0] = p[1] = false;
  UpDownRoutes r(g, p);
  EXPECT_EQ(r.root(), 2);
  EXPECT_EQ(r.bfs_level(2), 0);
}

TEST(UpDown, PathWalkReachesDestination) {
  MeshGeometry g(4, 4);
  UpDownRoutes r(g, all_on(16));
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      if (a == b) continue;
      NodeId cur = a;
      bool phase = false;
      int steps = 0;
      while (cur != b) {
        auto hop = r.next_hop(cur, b, phase);
        ASSERT_TRUE(hop.has_value());
        cur = g.neighbor(cur, hop->dir);
        phase = hop->went_down_after;
        ASSERT_LE(++steps, 32);
      }
      EXPECT_EQ(steps, r.path_len(a, b));
    }
  }
}

TEST(UpDown, LegalityNoUpAfterDown) {
  MeshGeometry g(4, 4);
  std::vector<bool> p = all_on(16);
  p[5] = p[10] = false;
  UpDownRoutes r(g, p);
  for (NodeId a = 0; a < 16; ++a) {
    if (!p[a]) continue;
    for (NodeId b = 0; b < 16; ++b) {
      if (!p[b] || a == b) continue;
      NodeId cur = a;
      bool phase = false;
      int steps = 0;
      while (cur != b) {
        auto hop = r.next_hop(cur, b, phase);
        ASSERT_TRUE(hop.has_value()) << a << "->" << b;
        // Once the phase bit is set, up links are forbidden.
        if (phase) ASSERT_FALSE(r.is_up_link(cur, hop->dir));
        cur = g.neighbor(cur, hop->dir);
        phase = hop->went_down_after;
        ASSERT_LE(++steps, 64);
      }
    }
  }
}

TEST(UpDown, PhaseBitMonotone) {
  MeshGeometry g(4, 4);
  UpDownRoutes r(g, all_on(16));
  for (NodeId a = 0; a < 16; ++a) {
    for (Direction d : kMeshDirections) {
      if (g.neighbor(a, d) == kInvalidNode) continue;
      // From phase=true, any legal hop keeps phase=true.
      auto hop = r.next_hop(a, g.neighbor(a, d), true);
      if (hop.has_value()) EXPECT_TRUE(hop->went_down_after);
    }
  }
}

TEST(UpDown, FullMeshPathsAreMinimalFromRootNeighborhood) {
  // On a fully powered mesh, up*/down* from the root reaches everything at
  // Manhattan distance (the BFS tree radiates from it).
  MeshGeometry g(4, 4);
  UpDownRoutes r(g, all_on(16));
  for (NodeId b = 1; b < 16; ++b) {
    EXPECT_EQ(r.path_len(0, b), g.hops(0, b));
  }
}

TEST(UpDown, UnpoweredNodesUnreachable) {
  MeshGeometry g(4, 4);
  std::vector<bool> p = all_on(16);
  p[6] = false;
  UpDownRoutes r(g, p);
  EXPECT_FALSE(r.reachable(0, 6));
  EXPECT_FALSE(r.reachable(6, 0));
  EXPECT_EQ(r.path_len(0, 6), -1);
}

TEST(UpDown, DisconnectedComponentDetected) {
  // Power off a full column cut: {1, 5, 9, 13} on a 4x4 disconnects
  // column 0 from columns 2-3.
  MeshGeometry g(4, 4);
  std::vector<bool> p = all_on(16);
  for (NodeId n : {1, 5, 9, 13}) p[n] = false;
  UpDownRoutes r(g, p);
  EXPECT_FALSE(r.all_powered_connected());
  EXPECT_FALSE(r.reachable(0, 2));
  // Routes exist only inside the root's component (the FM rejects
  // disconnected parked sets before they are ever installed).
  EXPECT_FALSE(r.reachable(2, 3));
  EXPECT_TRUE(r.reachable(0, 4));
}

class UpDownRandom : public ::testing::TestWithParam<int> {};

TEST_P(UpDownRandom, RandomSubgraphsRouteWithinComponent) {
  MeshGeometry g(6, 6);
  Rng rng(GetParam());
  std::vector<bool> p(36, true);
  for (int i = 0; i < 36; ++i) p[i] = !rng.next_bool(0.3);
  // Ensure at least one powered node.
  p[0] = true;
  UpDownRoutes r(g, p);
  for (NodeId a = 0; a < 36; ++a) {
    for (NodeId b = 0; b < 36; ++b) {
      if (!p[a] || !p[b] || a == b) continue;
      if (!r.reachable(a, b)) continue;
      NodeId cur = a;
      bool phase = false;
      int steps = 0;
      while (cur != b) {
        auto hop = r.next_hop(cur, b, phase);
        ASSERT_TRUE(hop.has_value());
        if (phase) ASSERT_FALSE(r.is_up_link(cur, hop->dir));
        cur = g.neighbor(cur, hop->dir);
        ASSERT_TRUE(p[cur]);  // never routes through an unpowered node
        phase = hop->went_down_after;
        ASSERT_LE(++steps, 72);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpDownRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace flov
