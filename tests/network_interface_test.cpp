// Network-interface tests: injection flow control, stalls, purge, and
// multi-VC stream interleaving.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "routing/yx_routing.hpp"

namespace flov {
namespace {

struct Harness {
  Harness()
      : params(make_params()), geom(2, 2), routing(geom),
        net(params, &routing, nullptr) {
    net.set_eject_callback(
        [this](const PacketRecord& r) { records.push_back(r); });
  }

  static NocParams make_params() {
    NocParams p;
    p.width = 2;
    p.height = 2;
    p.enable_escape_diversion = false;
    return p;
  }

  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) net.step(now++);
  }

  NocParams params;
  MeshGeometry geom;
  YxRouting routing;
  Network net;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

PacketDescriptor pkt(NodeId s, NodeId d, int size = 4, VnetId v = 0) {
  PacketDescriptor p;
  p.src = s;
  p.dest = d;
  p.size_flits = size;
  p.vnet = v;
  return p;
}

TEST(NetworkInterface, InjectsOneFlitPerCycle) {
  Harness h;
  h.net.enqueue(pkt(0, 1, 6));
  h.run(3);
  EXPECT_LE(h.net.ni(0).injected_flits(), 3u);
  h.run(30);
  EXPECT_EQ(h.net.ni(0).injected_flits(), 6u);
}

TEST(NetworkInterface, StallBlocksNewStreamsOnly) {
  Harness h;
  h.net.enqueue(pkt(0, 1, 6));
  h.run(3);  // mid-stream
  const auto sent_at_stall = h.net.ni(0).injected_flits();
  ASSERT_GT(sent_at_stall, 0u);
  h.net.ni(0).set_injection_stalled(true);
  h.net.enqueue(pkt(0, 1, 4));  // must NOT start
  h.run(40);
  EXPECT_EQ(h.net.ni(0).injected_flits(), 6u);  // first stream completed
  EXPECT_EQ(h.net.ni(0).queued_packets(), 1u);
  h.net.ni(0).set_injection_stalled(false);
  h.run(40);
  EXPECT_EQ(h.net.ni(0).injected_flits(), 10u);
  EXPECT_EQ(h.records.size(), 2u);
}

TEST(NetworkInterface, PurgeRemovesMatchingQueuedPackets) {
  Harness h;
  h.net.ni(0).set_injection_stalled(true);
  h.net.enqueue(pkt(0, 1));
  h.net.enqueue(pkt(0, 2));
  h.net.enqueue(pkt(0, 3));
  const auto removed = h.net.ni(0).purge_queue(
      [](const PacketDescriptor& p) { return p.dest == 2; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(h.net.ni(0).queued_packets(), 2u);
  h.net.ni(0).set_injection_stalled(false);
  h.run(100);
  EXPECT_EQ(h.records.size(), 2u);
}

TEST(NetworkInterface, ConcurrentStreamsOnDifferentVcsInterleave) {
  Harness h;
  // Three regular VCs available: three packets can stream concurrently.
  h.net.enqueue(pkt(0, 1, 8));
  h.net.enqueue(pkt(0, 2, 8));
  h.net.enqueue(pkt(0, 3, 8));
  h.run(4);
  // More than one stream is active at once.
  EXPECT_TRUE(h.net.ni(0).streams_active());
  h.run(100);
  EXPECT_EQ(h.records.size(), 3u);
}

TEST(NetworkInterface, IdleSemantics) {
  Harness h;
  EXPECT_TRUE(h.net.ni(0).idle());
  h.net.enqueue(pkt(0, 1));
  EXPECT_FALSE(h.net.ni(0).idle());
  h.run(50);
  EXPECT_TRUE(h.net.ni(0).idle());
  EXPECT_TRUE(h.net.idle());
}

TEST(NetworkInterface, EjectionCountsFlitsAndPackets) {
  Harness h;
  h.net.enqueue(pkt(1, 0, 5));
  h.run(50);
  EXPECT_EQ(h.net.ni(0).ejected_flits(), 5u);
  EXPECT_EQ(h.net.ni(0).ejected_packets(), 1u);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].size_flits, 5);
  EXPECT_EQ(h.records[0].src, 1);
}

TEST(NetworkInterface, RecordCarriesGenerationTime) {
  Harness h;
  auto p = pkt(0, 3);
  p.gen_cycle = 0;
  h.run(7);  // delay injection: queue later than generation
  h.net.enqueue(p);
  h.run(60);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].gen_cycle, 0u);
  EXPECT_GE(h.records[0].inject_cycle, 7u);
}

}  // namespace
}  // namespace flov
