// Hard-fault survival (PROTOCOL.md §8): permanent router/link deaths
// mid-run with end-to-end reliable delivery on top, across all four
// schemes and two mesh sizes, seed-swept.
//
// The contract under test:
//   * the run terminates (no watchdog abort, no livelock) and the drain
//     tail settles every reliable flow to acked-or-declared-dead,
//   * the invariant verifier stays clean throughout (conservation, credits
//     and delivery accounting hold even while routers disappear),
//   * nothing is silently lost: generated == acked + dead + purged +
//     killed-at-source, and every declared-dead flow has a structured
//     "packet_dead" incident,
//   * the lossless sweep checkpoint codec round-trips a RunResult exactly,
//     rejects damaged lines, and a killed+resumed sweep reproduces the
//     uninterrupted sweep's merged metrics byte for byte.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"

namespace flov {
namespace {

SyntheticExperimentConfig hard_fault_config(Scheme s, int k,
                                            std::uint64_t seed) {
  SyntheticExperimentConfig ex;
  ex.noc.width = k;
  ex.noc.height = k;
  ex.scheme = s;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  // Gating exercises the FLOV survival paths (dead routers must coexist
  // with sleeping ones); RP/baseline run ungated — RP parks sources, and a
  // parked source cannot retransmit, which is a different scenario.
  const bool flov = (s == Scheme::kRFlov || s == Scheme::kGFlov);
  ex.gated_fraction = flov ? 0.3 : 0.0;
  ex.warmup = 500;
  ex.measure = 2500;
  ex.seed = seed;
  // Reliable delivery with a short timeout so dead flows resolve inside
  // the drain budget: 4 retries at 64 << min(n,3) spend ~2.4k cycles.
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 64;
  // Recovery hardening for the transient faults layered on top.
  ex.noc.hs_retry_timeout = 32;
  ex.noc.hs_retry_limit = 16;
  ex.noc.trigger_retry_timeout = 64;
  ex.noc.sleep_reannounce_interval = 128;
  ex.noc.psr_block_timeout = 192;
  ex.drain_max = 30000;
  ex.max_cycles_hard = 200000;
  ex.verifier.fatal = false;  // count violations so the test can report them
  ex.verifier.settle_window = 512;
  // Hard faults strike a third of the way into measurement...
  ex.faults.hard_router_pct = 0.10;
  ex.faults.hard_link_pct = 0.04;
  ex.faults.hard_at_cycle = ex.warmup + ex.measure / 3;
  // ...on top of a lossy control fabric (transient + hard combined).
  ex.faults.signal_drop_rate = 0.005;
  ex.faults.signal_delay_rate = 0.01;
  ex.faults.signal_delay_max = 4;
  ex.faults.signal_dup_rate = 0.002;
  ex.faults.seed = seed;
  return ex;
}

std::uint64_t count_incidents(const RunResult& r, const std::string& kind) {
  std::uint64_t n = 0;
  if (!r.incidents) return 0;
  const std::string needle = "\"kind\":\"" + kind + "\"";
  for (const std::string& rec : r.incidents->records()) {
    if (rec.find(needle) != std::string::npos) ++n;
  }
  return n;
}

void check_survival(const RunResult& r) {
  EXPECT_FALSE(r.aborted) << "hard cycle cap hit: the run failed to settle";
  EXPECT_EQ(r.verifier_violations, 0u);
  EXPECT_GT(r.verifier_checks, 0u);
  // Nothing silently lost: every generated packet resolved one way.
  EXPECT_EQ(r.packets_generated, r.packets_acked + r.packets_dead +
                                     r.packets_purged + r.killed_at_source);
  // Every declared-dead flow is individually accounted as an incident
  // (capped at 200 per run, with an overflow record past that).
  if (r.packets_dead <= 200) {
    EXPECT_EQ(count_incidents(r, "packet_dead"), r.packets_dead);
  } else {
    EXPECT_EQ(count_incidents(r, "packet_dead"), 200u);
    EXPECT_EQ(count_incidents(r, "packet_dead_overflow"), 1u);
  }
  if (r.dead_routers > 0 || r.dead_links > 0) {
    EXPECT_EQ(count_incidents(r, "hard_fault_summary"), 1u);
  }
}

using Param = std::tuple<Scheme, int /*mesh k*/, int /*seed*/>;

class HardFaultFuzz : public ::testing::TestWithParam<Param> {};

TEST_P(HardFaultFuzz, RoutersDieMidRunAndTheRunStillSettles) {
  const auto [s, k, seed] = GetParam();
  const RunResult r =
      run_synthetic(hard_fault_config(s, k, static_cast<std::uint64_t>(seed)));
  check_survival(r);
  EXPECT_GT(r.packets_generated, 0u);
  if (k == 8) {
    // 10% of 64 routers: the fate hash makes "none died" astronomically
    // unlikely; if this fires the hard-fault arming is broken.
    EXPECT_GT(r.dead_routers, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HardFaultFuzz,
    ::testing::Combine(::testing::Values(Scheme::kBaseline, Scheme::kRp,
                                         Scheme::kRFlov, Scheme::kGFlov),
                       ::testing::Values(4, 8), ::testing::Range(1, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "x" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// The ISSUE's acceptance scenario: gFLOV 8x8, routers die mid-run, and at
// least 95% of the traffic between nodes that REMAINED mutually reachable
// still arrives. Flows whose endpoint died are exactly the dead/purged/
// killed buckets, so the reachable-pair delivery ratio is acked over
// (generated minus those) — which the accounting identity pins to 100%;
// the sharper end-to-end claim checked here is that the casualties are a
// small fraction of total traffic and every one of them is accounted.
TEST(HardFaultAcceptance, GFlov8x8TwoRoutersDieDeliveryStaysHigh) {
  SyntheticExperimentConfig ex = hard_fault_config(Scheme::kGFlov, 8, 17);
  ex.faults.hard_router_pct = 0.03;  // ~2 of 64 routers
  ex.faults.hard_link_pct = 0.0;
  ex.measure = 4000;
  const RunResult r = run_synthetic(ex);
  check_survival(r);
  ASSERT_GT(r.dead_routers, 0);
  const double casualties = static_cast<double>(
      r.packets_dead + r.packets_purged + r.killed_at_source);
  EXPECT_GE(static_cast<double>(r.packets_acked),
            0.95 * static_cast<double>(r.packets_generated))
      << "casualties=" << casualties << " of " << r.packets_generated;
  EXPECT_GT(r.retransmits, 0u);  // survival must have been exercised
}

// A run with no faults and reliable delivery on: nothing dies, nothing is
// retransmitted spuriously at a sane timeout, and the drain leaves zero
// outstanding flows.
TEST(HardFaultAcceptance, ReliableLayerIsQuietOnAHealthyFabric) {
  SyntheticExperimentConfig ex = hard_fault_config(Scheme::kGFlov, 4, 5);
  ex.faults = FaultParams{};
  ex.noc.retx_timeout = 512;
  const RunResult r = run_synthetic(ex);
  check_survival(r);
  EXPECT_EQ(r.packets_dead, 0u);
  EXPECT_EQ(r.packets_purged, 0u);
  EXPECT_EQ(r.killed_at_source, 0u);
  EXPECT_EQ(r.packets_acked, r.packets_generated);
  EXPECT_EQ(r.dead_routers, 0);
  EXPECT_EQ(r.dead_links, 0);
}

// --- lossless sweep checkpoints -----------------------------------------

std::string registry_json(const telemetry::MetricsRegistry& reg) {
  telemetry::JsonWriter w;
  reg.write_json(w);
  return w.take();
}

TEST(Checkpoint, RoundTripsARunResultExactly) {
  const SyntheticExperimentConfig ex = hard_fault_config(Scheme::kGFlov, 4, 9);
  const RunResult r = run_synthetic(ex);
  const std::string line = encode_sweep_checkpoint_line(7, ex, r);

  int index = -1;
  std::uint64_t fp = 0;
  RunResult back;
  ASSERT_TRUE(decode_sweep_checkpoint_line(line, &index, &fp, &back));
  EXPECT_EQ(index, 7);
  EXPECT_EQ(fp, sweep_point_fingerprint(ex));

  EXPECT_EQ(back.scheme, r.scheme);
  EXPECT_EQ(back.avg_latency, r.avg_latency);
  EXPECT_EQ(back.p99_latency, r.p99_latency);
  EXPECT_EQ(back.power.total_mw, r.power.total_mw);
  EXPECT_EQ(back.packets_generated, r.packets_generated);
  EXPECT_EQ(back.packets_acked, r.packets_acked);
  EXPECT_EQ(back.packets_dead, r.packets_dead);
  EXPECT_EQ(back.retransmits, r.retransmits);
  EXPECT_EQ(back.dead_routers, r.dead_routers);
  EXPECT_EQ(back.dead_links, r.dead_links);
  EXPECT_EQ(back.aborted, r.aborted);
  EXPECT_EQ(back.cycles_run, r.cycles_run);

  // The restored registry must serialize byte-identically — this is what
  // makes a resumed sweep's merged manifest match the uninterrupted one.
  ASSERT_TRUE(back.metrics && r.metrics);
  EXPECT_EQ(registry_json(*back.metrics), registry_json(*r.metrics));
  // Incidents round-trip verbatim (stored as escaped JSON strings, never
  // re-serialized through a key-reordering parse).
  ASSERT_TRUE(back.incidents && r.incidents);
  EXPECT_EQ(back.incidents->records(), r.incidents->records());
}

TEST(Checkpoint, RejectsDamagedLinesAndStaleFingerprints) {
  const SyntheticExperimentConfig ex = hard_fault_config(Scheme::kRFlov, 4, 3);
  const RunResult r = run_synthetic(ex);
  const std::string line = encode_sweep_checkpoint_line(0, ex, r);

  int index;
  std::uint64_t fp;
  RunResult out;
  // Truncation (crash mid-write), garbage, wrong schema: all rejected.
  EXPECT_FALSE(decode_sweep_checkpoint_line(line.substr(0, line.size() / 2),
                                            &index, &fp, &out));
  EXPECT_FALSE(decode_sweep_checkpoint_line("not json at all", &index, &fp,
                                            &out));
  EXPECT_FALSE(decode_sweep_checkpoint_line("{\"schema\":\"bogus-v9\"}",
                                            &index, &fp, &out));
  EXPECT_FALSE(decode_sweep_checkpoint_line("", &index, &fp, &out));

  // A checkpoint written for a DIFFERENT configuration must not leak its
  // results into this sweep: same index, different knobs -> not restored.
  const std::string path =
      ::testing::TempDir() + "/flov_stale_ckpt.jsonl";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(line.c_str(), f);
  std::fputs("\n", f);
  std::fclose(f);

  SyntheticExperimentConfig edited = ex;
  edited.inj_rate_flits = 0.06;  // result-affecting edit
  std::vector<RunResult> results(1);
  std::vector<char> have(1, 0);
  EXPECT_EQ(load_sweep_checkpoint(path, {edited}, &results, &have), 0);
  EXPECT_EQ(have[0], 0);
  // The unedited sweep restores it fine.
  EXPECT_EQ(load_sweep_checkpoint(path, {ex}, &results, &have), 1);
  EXPECT_EQ(have[0], 1);
  std::remove(path.c_str());
}

TEST(Checkpoint, KilledAndResumedSweepMatchesUninterruptedByteForByte) {
  std::vector<SyntheticExperimentConfig> points;
  for (Scheme s : {Scheme::kGFlov, Scheme::kRp}) {
    for (std::uint64_t seed : {1u, 2u}) {
      points.push_back(hard_fault_config(s, 4, seed));
    }
  }

  SweepOptions plain;
  plain.jobs = 1;
  const std::vector<RunResult> uninterrupted = run_sweep(points, plain);
  const std::string golden_merged =
      registry_json(merge_sweep_metrics(uninterrupted));

  // Full run with checkpointing, then simulate a kill: keep the first two
  // lines, plus a torn third line (crash mid-write) and a garbage line.
  const std::string path = ::testing::TempDir() + "/flov_resume_ckpt.jsonl";
  std::remove(path.c_str());
  SweepOptions ck;
  ck.jobs = 1;
  ck.checkpoint_path = path;
  run_sweep(points, ck);

  std::vector<std::string> lines;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string all;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) all.append(buf, n);
    std::fclose(f);
    std::size_t pos = 0;
    while (pos < all.size()) {
      const std::size_t nl = all.find('\n', pos);
      lines.push_back(all.substr(pos, nl - pos));
      if (nl == std::string::npos) break;
      pos = nl + 1;
    }
  }
  ASSERT_EQ(lines.size(), points.size());
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n%s\n", lines[0].c_str(), lines[1].c_str());
    std::fprintf(f, "%s", lines[2].substr(0, lines[2].size() / 3).c_str());
    std::fprintf(f, "\n{\"schema\":\"flyover-sweep-checkpoi");  // torn garbage
    std::fclose(f);
  }

  // Resume: only the two missing points re-run...
  SweepOptions resume = ck;
  resume.resume = true;
  int progress_calls = 0;
  resume.progress = [&](int, int) { ++progress_calls; };
  const std::vector<RunResult> resumed = run_sweep(points, resume);
  EXPECT_EQ(progress_calls, 2);

  // ...and the merged metrics are byte-identical to never having died.
  EXPECT_EQ(registry_json(merge_sweep_metrics(resumed)), golden_merged);
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(resumed[i].avg_latency, uninterrupted[i].avg_latency);
    EXPECT_EQ(resumed[i].packets_acked, uninterrupted[i].packets_acked);
    EXPECT_EQ(resumed[i].packets_dead, uninterrupted[i].packets_dead);
    ASSERT_TRUE(resumed[i].incidents && uninterrupted[i].incidents);
    EXPECT_EQ(resumed[i].incidents->records(),
              uninterrupted[i].incidents->records());
  }
  std::remove(path.c_str());
}

// Retries on a healthy point must be a no-op: same results as retries=0
// (the retry loop only changes behavior when the body actually throws).
TEST(Checkpoint, SweepRetriesAreTransparentOnHealthyPoints) {
  std::vector<SyntheticExperimentConfig> points(
      1, hard_fault_config(Scheme::kBaseline, 4, 2));
  SweepOptions opts;
  opts.jobs = 1;
  opts.retries = 2;
  opts.retry_backoff_ms = 1;
  const std::vector<RunResult> a = run_sweep(points, opts);
  SweepOptions plain;
  plain.jobs = 1;
  const std::vector<RunResult> b = run_sweep(points, plain);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].avg_latency, b[0].avg_latency);
  EXPECT_EQ(a[0].packets_acked, b[0].packets_acked);
}

}  // namespace
}  // namespace flov
