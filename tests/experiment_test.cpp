// Experiment-harness tests: determinism, configuration plumbing, builder
// behaviour, and cross-metric consistency of RunResult.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "sim/experiment.hpp"

namespace flov {
namespace {

SyntheticExperimentConfig quick() {
  SyntheticExperimentConfig c;
  c.warmup = 1000;
  c.measure = 5000;
  c.inj_rate_flits = 0.02;
  c.gated_fraction = 0.3;
  return c;
}

TEST(Builder, ProducesEverySchemeWithPowerTracker) {
  for (Scheme s : kAllSchemes) {
    BuiltSystem b = build_system(s, NocParams{}, EnergyParams{});
    ASSERT_NE(b.system, nullptr);
    ASSERT_NE(b.power, nullptr);
    EXPECT_STREQ(b.system->name(), to_string(s));
  }
}

TEST(Builder, SchemeNamesRoundTrip) {
  for (Scheme s : kAllSchemes) {
    EXPECT_EQ(scheme_from_string(to_string(s)), s);
  }
  EXPECT_EQ(scheme_from_string("gflov"), Scheme::kGFlov);
  EXPECT_THROW(scheme_from_string("nope"), std::logic_error);
}

TEST(Experiment, DeterministicPerSeed) {
  SyntheticExperimentConfig c = quick();
  c.scheme = Scheme::kGFlov;
  const RunResult a = run_synthetic(c);
  const RunResult b = run_synthetic(c);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_DOUBLE_EQ(a.power.total_energy_pj, b.power.total_energy_pj);
  c.seed = 99;
  const RunResult d = run_synthetic(c);
  EXPECT_NE(a.packets_measured, d.packets_measured);
}

TEST(Experiment, ZeroGatingMatchesSchemesOnLatency) {
  // Without gating, rFLOV/gFLOV behave as the baseline network (plus the
  // inert FLOV hardware); their latencies must match Baseline exactly
  // under the same seed.
  SyntheticExperimentConfig c = quick();
  c.gated_fraction = 0.0;
  c.scheme = Scheme::kBaseline;
  const double base = run_synthetic(c).avg_latency;
  c.scheme = Scheme::kGFlov;
  EXPECT_DOUBLE_EQ(run_synthetic(c).avg_latency, base);
  c.scheme = Scheme::kRFlov;
  EXPECT_DOUBLE_EQ(run_synthetic(c).avg_latency, base);
}

TEST(Experiment, BreakdownSumsToAverageLatency) {
  SyntheticExperimentConfig c = quick();
  for (Scheme s : kAllSchemes) {
    c.scheme = s;
    const RunResult r = run_synthetic(c);
    EXPECT_NEAR(r.breakdown.total(), r.avg_latency, 1e-6) << to_string(s);
  }
}

TEST(Experiment, HigherInjectionRaisesDynamicPower) {
  SyntheticExperimentConfig c = quick();
  c.scheme = Scheme::kBaseline;
  c.inj_rate_flits = 0.02;
  const double low = run_synthetic(c).power.dynamic_mw;
  c.inj_rate_flits = 0.08;
  const double high = run_synthetic(c).power.dynamic_mw;
  EXPECT_GT(high, 2.5 * low);
}

TEST(Experiment, StaticPowerIndependentOfInjectionForGFlov) {
  SyntheticExperimentConfig c = quick();
  c.scheme = Scheme::kGFlov;
  c.measure = 15000;
  c.inj_rate_flits = 0.02;
  const double a = run_synthetic(c).power.static_mw;
  c.inj_rate_flits = 0.08;
  const double b = run_synthetic(c).power.static_mw;
  // The gated-router set depends only on the gating configuration
  // (paper: "injection rate and workload independent"); tiny deviations
  // come from wakeup transients only.
  EXPECT_NEAR(a, b, 0.05 * a);
}

TEST(Experiment, NocParamsFromConfigRoundTrip) {
  Config cfg;
  cfg.set("noc.width", 6ll);
  cfg.set("noc.height", 4ll);
  cfg.set("noc.buffer_depth", 8ll);
  cfg.set("noc.packet_size", 2ll);
  cfg.set("noc.deadlock_timeout", 64ll);
  const NocParams p = NocParams::from_config(cfg);
  EXPECT_EQ(p.width, 6);
  EXPECT_EQ(p.height, 4);
  EXPECT_EQ(p.buffer_depth, 8);
  EXPECT_EQ(p.packet_size, 2);
  EXPECT_EQ(p.deadlock_timeout, 64u);
  EXPECT_EQ(p.vcs_per_vnet, 4);  // untouched default
}

TEST(Experiment, InvalidNocParamsRejected) {
  Config cfg;
  cfg.set("noc.width", 1ll);
  EXPECT_THROW(NocParams::from_config(cfg), std::logic_error);
  Config cfg2;
  cfg2.set("noc.escape_vc", 9ll);
  EXPECT_THROW(NocParams::from_config(cfg2), std::logic_error);
}

TEST(Experiment, TimelineOnlyWhenRequested) {
  SyntheticExperimentConfig c = quick();
  const RunResult off = run_synthetic(c);
  EXPECT_TRUE(off.timeline.empty());
  c.timeline_window = 500;
  const RunResult on = run_synthetic(c);
  EXPECT_FALSE(on.timeline.empty());
}

TEST(Experiment, GatedRoutersMonotoneInFractionForGFlov) {
  SyntheticExperimentConfig c = quick();
  c.scheme = Scheme::kGFlov;
  int prev = -1;
  for (double f : {0.0, 0.3, 0.6}) {
    c.gated_fraction = f;
    const RunResult r = run_synthetic(c);
    EXPECT_GE(r.gated_routers_end, prev);
    prev = r.gated_routers_end;
  }
}

}  // namespace
}  // namespace flov
