// Targeted tests for the gFLOV protocol rules of Section IV-B:
//   * no Draining–Draining logical pair (smaller id proceeds),
//   * no Draining–Wakeup pair (Wakeup priority: the drainer aborts),
//   * a sleeping router defers wakeup while a logical neighbor drains,
//   * two logical neighbors may wake concurrently,
//   * sleep notifications keep logical PSRs consistent across runs.
#include <gtest/gtest.h>

#include "flov/flov_network.hpp"

namespace flov {
namespace {

NocParams params6() {
  NocParams p;
  p.width = 6;
  p.height = 6;
  p.drain_idle_threshold = 8;
  return p;
}

struct Harness {
  Harness() : sys(params6(), FlovMode::kGeneralized, EnergyParams{}) {
    sys.network().set_eject_callback(
        [this](const PacketRecord& r) { records.push_back(r); });
  }
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) sys.step(now++);
  }
  void run_until(NodeId n, PowerState s, int bound = 3000) {
    for (int i = 0; i < bound && sys.hsc(n).state() != s; ++i) sys.step(now++);
    ASSERT_EQ(sys.hsc(n).state(), s) << "router " << n;
  }
  FlovNetwork sys;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

// Row 2 of the 6x6 mesh: routers 12..17 (17 is AON).

TEST(GFlovRules, LogicalDrainDrainArbitratedBySmallerId) {
  Harness h;
  // Make 13 and 15 logical neighbors by sleeping 14 first.
  h.sys.set_core_gated(14, true, 0);
  h.run_until(14, PowerState::kSleep);
  // Now gate both logical neighbors at once.
  h.sys.set_core_gated(13, true, h.now);
  h.sys.set_core_gated(15, true, h.now);
  // They must serialize: never Draining simultaneously for long, and never
  // both drop to Sleep in the same handshake round without ordering.
  bool both_draining = false;
  for (int i = 0; i < 2000; ++i) {
    h.run(1);
    if (h.sys.hsc(13).state() == PowerState::kDraining &&
        h.sys.hsc(15).state() == PowerState::kDraining) {
      // Transient crossings are allowed only until the DrainReqs meet
      // (2 hops = 2 cycles); persistent overlap is a protocol violation.
      both_draining = true;
    }
  }
  // Eventually both sleep (the restriction orders, not forbids).
  EXPECT_EQ(h.sys.hsc(13).state(), PowerState::kSleep);
  EXPECT_EQ(h.sys.hsc(15).state(), PowerState::kSleep);
  (void)both_draining;  // informational; hard guarantee checked below
}

TEST(GFlovRules, DrainAbortsWhenLogicalNeighborWakes) {
  Harness h;
  // Sleep 14; gate 15's core but keep it from draining by keeping its NI
  // busy... simpler: start 15's drain, then wake 14 and observe.
  h.sys.set_core_gated(14, true, 0);
  h.run_until(14, PowerState::kSleep);
  h.sys.set_core_gated(15, true, h.now);
  for (int i = 0; i < 3000 && h.sys.hsc(15).state() != PowerState::kDraining;
       ++i) {
    h.run(1);
  }
  ASSERT_EQ(h.sys.hsc(15).state(), PowerState::kDraining);
  // 14 wakes (core back on): its WakeupNotify must abort 15's drain.
  h.sys.set_core_gated(14, false, h.now);
  const auto aborts_before = h.sys.hsc(15).drain_aborts();
  h.run(100);
  EXPECT_EQ(h.sys.hsc(14).state(), PowerState::kActive);
  EXPECT_GE(h.sys.hsc(15).drain_aborts(), aborts_before);
  // 15's core is still gated; it re-drains and sleeps afterwards.
  h.run_until(15, PowerState::kSleep);
}

TEST(GFlovRules, SleeperDefersWakeupWhileLogicalNeighborDrains) {
  Harness h;
  h.sys.set_core_gated(14, true, 0);
  h.run_until(14, PowerState::kSleep);
  // 13 starts draining; while it drains, 14's core comes back.
  h.sys.set_core_gated(13, true, h.now);
  for (int i = 0; i < 3000 && h.sys.hsc(13).state() != PowerState::kDraining;
       ++i) {
    h.run(1);
  }
  ASSERT_EQ(h.sys.hsc(13).state(), PowerState::kDraining);
  h.sys.set_core_gated(14, false, h.now);
  h.run(2);
  // 14 must not be waking while 13 still drains.
  if (h.sys.hsc(13).state() == PowerState::kDraining) {
    EXPECT_EQ(h.sys.hsc(14).state(), PowerState::kSleep);
  }
  // Once 13 resolves (sleeps), 14 proceeds to wake.
  h.run_until(14, PowerState::kActive);
}

TEST(GFlovRules, ConcurrentWakeupsComplete) {
  Harness h;
  for (NodeId n : {13, 14, 15}) h.sys.set_core_gated(n, true, 0);
  for (NodeId n : {13, 14, 15}) h.run_until(n, PowerState::kSleep);
  // Wake 13 and 15 in the same cycle: logical partners across sleeping 14.
  h.sys.set_core_gated(13, false, h.now);
  h.sys.set_core_gated(15, false, h.now);
  h.run_until(13, PowerState::kActive);
  h.run_until(15, PowerState::kActive);
  EXPECT_EQ(h.sys.hsc(14).state(), PowerState::kSleep);  // undisturbed
  // Traffic across the re-formed line works.
  PacketDescriptor p;
  p.src = 12;
  p.dest = 16;
  p.size_flits = 4;
  p.gen_cycle = h.now;
  h.sys.network().enqueue(p);
  h.run(300);
  EXPECT_EQ(h.records.size(), 1u);
}

TEST(GFlovRules, LogicalPsrChainAcrossThreeSleepers) {
  Harness h;
  for (NodeId n : {13, 14, 15}) {
    h.sys.set_core_gated(n, true, h.now);
    h.run_until(n, PowerState::kSleep);
    h.run(10);  // let the SleepNotify waves land (1 cycle per hop)
  }
  // 12's logical East neighbor must be the AON-adjacent router 16.
  EXPECT_EQ(h.sys.network()
                .router(12)
                .view()
                .logical[dir_index(Direction::East)],
            16);
  EXPECT_EQ(h.sys.network()
                .router(16)
                .view()
                .logical[dir_index(Direction::West)],
            12);
  // The middle sleeper's own PSRs stayed consistent for its future wakeup.
  EXPECT_EQ(h.sys.network()
                .router(14)
                .view()
                .logical[dir_index(Direction::East)],
            16);
  EXPECT_EQ(h.sys.network()
                .router(14)
                .view()
                .logical[dir_index(Direction::West)],
            12);
}

TEST(GFlovRules, MiddleOfRunWakesAndRepairsChain) {
  Harness h;
  for (NodeId n : {13, 14, 15}) {
    h.sys.set_core_gated(n, true, h.now);
    h.run_until(n, PowerState::kSleep);
    h.run(10);
  }
  h.sys.set_core_gated(14, false, h.now);
  h.run_until(14, PowerState::kActive);
  h.run(10);  // ActiveNotify waves land
  // Chain splits: 12 <-> 14 <-> 16 logically.
  EXPECT_EQ(h.sys.network()
                .router(12)
                .view()
                .logical[dir_index(Direction::East)],
            14);
  EXPECT_EQ(h.sys.network()
                .router(14)
                .view()
                .logical[dir_index(Direction::West)],
            12);
  EXPECT_EQ(h.sys.network()
                .router(14)
                .view()
                .logical[dir_index(Direction::East)],
            16);
  // And the still-sleeping flanks stay asleep.
  EXPECT_EQ(h.sys.hsc(13).state(), PowerState::kSleep);
  EXPECT_EQ(h.sys.hsc(15).state(), PowerState::kSleep);
}

TEST(GFlovRules, StaleDrainReqToSleeperGetsSleepNotify) {
  // A router whose PSR went stale may target a DrainReq at a sleeping
  // partner; the sleeper must answer with SleepNotify so the drainer
  // re-points (the [impl] rule in docs/PROTOCOL.md). Observable effect:
  // the drain completes against the correct partner afterwards.
  Harness h;
  h.sys.set_core_gated(14, true, 0);
  h.run_until(14, PowerState::kSleep);
  h.sys.set_core_gated(13, true, h.now);
  h.run_until(13, PowerState::kSleep);
  // If addressing had wedged, 13 would hang in Draining until the abort
  // timeout; reaching Sleep quickly proves the recovery works.
  EXPECT_LT(h.now, 2000u);
}

}  // namespace
}  // namespace flov
