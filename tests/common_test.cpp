// Unit tests for common/: geometry, RNG, statistics, configuration.
#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "common/geometry.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace flov {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Geometry, IdCoordRoundTrip) {
  MeshGeometry g(8, 8);
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    EXPECT_EQ(g.id(g.coord(id)), id);
  }
}

TEST(Geometry, RowMajorFromTopMatchesPaperFig5) {
  // In the paper's 4x4 example, router 9 is SOUTH of router 5 and router 6
  // is EAST of router 5.
  MeshGeometry g(4, 4);
  EXPECT_EQ(g.neighbor(5, Direction::South), 9);
  EXPECT_EQ(g.neighbor(5, Direction::East), 6);
  EXPECT_EQ(g.neighbor(5, Direction::North), 1);
  EXPECT_EQ(g.neighbor(5, Direction::West), 4);
}

TEST(Geometry, EdgesReturnInvalid) {
  MeshGeometry g(4, 4);
  EXPECT_EQ(g.neighbor(0, Direction::North), kInvalidNode);
  EXPECT_EQ(g.neighbor(0, Direction::West), kInvalidNode);
  EXPECT_EQ(g.neighbor(15, Direction::South), kInvalidNode);
  EXPECT_EQ(g.neighbor(15, Direction::East), kInvalidNode);
  EXPECT_EQ(g.neighbor(3, Direction::North), kInvalidNode);
  EXPECT_EQ(g.neighbor(12, Direction::West), kInvalidNode);
}

TEST(Geometry, FlovLinkEligibility) {
  MeshGeometry g(4, 4);
  // Corners: no FLOV links at all.
  for (NodeId c : {0, 3, 12, 15}) {
    EXPECT_TRUE(g.is_corner(c)) << c;
    EXPECT_FALSE(g.has_both_horizontal_neighbors(c));
    EXPECT_FALSE(g.has_both_vertical_neighbors(c));
  }
  // Top edge (id 1): X-FLOV only.
  EXPECT_TRUE(g.has_both_horizontal_neighbors(1));
  EXPECT_FALSE(g.has_both_vertical_neighbors(1));
  // Left edge (id 4): Y-FLOV only.
  EXPECT_FALSE(g.has_both_horizontal_neighbors(4));
  EXPECT_TRUE(g.has_both_vertical_neighbors(4));
  // Interior (id 5): both.
  EXPECT_TRUE(g.has_both_horizontal_neighbors(5));
  EXPECT_TRUE(g.has_both_vertical_neighbors(5));
}

TEST(Geometry, AonColumnIsLastColumn) {
  MeshGeometry g(4, 4);
  for (NodeId id : {3, 7, 11, 15}) EXPECT_TRUE(g.is_aon_column(id)) << id;
  for (NodeId id : {0, 1, 2, 4, 8, 12, 14}) {
    EXPECT_FALSE(g.is_aon_column(id)) << id;
  }
}

TEST(Geometry, ManhattanHops) {
  MeshGeometry g(8, 8);
  EXPECT_EQ(g.hops(0, 63), 14);
  EXPECT_EQ(g.hops(0, 0), 0);
  EXPECT_EQ(g.hops(0, 7), 7);
  EXPECT_EQ(g.hops(7, 0), 7);
}

TEST(Geometry, OppositeDirections) {
  EXPECT_EQ(opposite(Direction::North), Direction::South);
  EXPECT_EQ(opposite(Direction::South), Direction::North);
  EXPECT_EQ(opposite(Direction::East), Direction::West);
  EXPECT_EQ(opposite(Direction::West), Direction::East);
  EXPECT_EQ(opposite(Direction::Local), Direction::Local);
}

TEST(Geometry, RectangularMesh) {
  MeshGeometry g(8, 4);
  EXPECT_EQ(g.num_nodes(), 32);
  EXPECT_EQ(g.coord(31).x, 7);
  EXPECT_EQ(g.coord(31).y, 3);
  EXPECT_EQ(g.neighbor(8, Direction::North), 0);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    if (va != c.next_u64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, NextBelowBounds) {
  Rng r(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng r(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRate) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.next_bool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
  EXPECT_FALSE(r.next_bool(0.0));
  EXPECT_TRUE(r.next_bool(1.0));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng r(19);
  Rng a = r.split();
  Rng b = r.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

// ------------------------------------------------------------------- stats

TEST(Stats, AccumulatorBasics) {
  StatAccumulator s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
}

TEST(Stats, AccumulatorMergeMatchesCombined) {
  StatAccumulator a, b, all;
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    const double x = r.next_double() * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, AccumulatorMergeWithEmpty) {
  StatAccumulator a, empty;
  for (double x : {2.0, 4.0, 6.0}) a.add(x);
  const double mean = a.mean(), var = a.variance();

  a.merge(empty);  // merging an empty accumulator changes nothing
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_DOUBLE_EQ(a.variance(), var);

  StatAccumulator b;
  b.merge(a);  // merging INTO an empty adopts the other wholesale
  EXPECT_EQ(b.count(), 3u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_DOUBLE_EQ(b.variance(), var);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 6.0);
}

TEST(Stats, AccumulatorMergeOrderIndependentForSameData) {
  // The sweep fold relies on merge producing the same moments regardless
  // of how the samples were split across per-run accumulators.
  StatAccumulator ab, ba, a1, b1, a2, b2;
  Rng r(5);
  for (int i = 0; i < 50; ++i) {
    const double x = r.next_double() * 100 - 50;
    (i < 25 ? a1 : b1).add(x);
    (i < 25 ? a2 : b2).add(x);
  }
  ab = a1;
  ab.merge(b1);
  ba = b2;
  ba.merge(a2);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-12);
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
}

TEST(Stats, HistogramPercentiles) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(50), 50, 1.5);
  EXPECT_NEAR(h.percentile(90), 90, 1.5);
  EXPECT_EQ(h.count(), 100u);
}

TEST(Stats, HistogramClampsOutOfRange) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(50);
  EXPECT_EQ(h.bins().front(), 1u);
  EXPECT_EQ(h.bins().back(), 1u);
}

TEST(Stats, HistogramEmptyPercentile) {
  Histogram h(0, 100, 10);
  EXPECT_EQ(h.count(), 0u);
  // Percentiles of an empty histogram must not crash; any in-range
  // constant is acceptable as long as it is deterministic.
  const double p50 = h.percentile(50);
  EXPECT_EQ(p50, h.percentile(50));
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 100.0);
}

TEST(Stats, HistogramSingleBin) {
  Histogram h(0, 10, 1);
  for (int i = 0; i < 7; ++i) h.add(5.0);
  EXPECT_EQ(h.count(), 7u);
  // With one bin, every percentile interpolates within [0, 10).
  EXPECT_GE(h.percentile(0), 0.0);
  EXPECT_LE(h.percentile(100), 10.0);
  EXPECT_LE(h.percentile(10), h.percentile(90));
}

TEST(Stats, HistogramPercentileExtremes) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_LE(h.percentile(0), h.percentile(1));
  EXPECT_LE(h.percentile(99), h.percentile(100));
  EXPECT_NEAR(h.percentile(0), 0.0, 1.5);
  EXPECT_NEAR(h.percentile(100), 100.0, 1.5);
}

TEST(Stats, HistogramClampCountersVisible) {
  // The clamp counters make saturation visible: a p99 read off a
  // histogram with non-zero clamped_high() is a lower bound.
  Histogram h(0, 10, 10);
  for (int i = 0; i < 90; ++i) h.add(5.0);
  EXPECT_EQ(h.clamped_low(), 0u);
  EXPECT_EQ(h.clamped_high(), 0u);
  for (int i = 0; i < 10; ++i) h.add(1e6);
  h.add(-1.0);
  EXPECT_EQ(h.clamped_high(), 10u);
  EXPECT_EQ(h.clamped_low(), 1u);
  EXPECT_EQ(h.count(), 101u);
  // All clamped-high mass sits in the last bin, so the p99 saturates just
  // below the upper bound instead of reporting the true 1e6.
  EXPECT_LE(h.percentile(99), 10.0);
}

TEST(Stats, HistogramMergeAddsBinsAndClamps) {
  Histogram a(0, 10, 10), b(0, 10, 10);
  a.add(1.5);
  a.add(99.0);  // clamped high
  b.add(1.5);
  b.add(-3.0);  // clamped low
  b.add(8.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.bins()[1], 2u);  // both 1.5 samples
  EXPECT_EQ(a.clamped_high(), 1u);
  EXPECT_EQ(a.clamped_low(), 1u);
}

TEST(Stats, TimeSeriesBuckets) {
  TimeSeries ts(100);
  ts.add(10, 1.0);
  ts.add(20, 3.0);
  ts.add(150, 10.0);
  ts.add(950, 7.0);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_DOUBLE_EQ(pts[0].mean, 2.0);
  EXPECT_EQ(pts[1].window_start, 100u);
  EXPECT_DOUBLE_EQ(pts[1].mean, 10.0);
  EXPECT_EQ(pts[2].window_start, 900u);
}

TEST(Stats, TimeSeriesOutOfOrderInsert) {
  TimeSeries ts(10);
  ts.add(100, 1.0);
  ts.add(5, 2.0);  // earlier window after a later one
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_EQ(pts[1].window_start, 100u);
}

TEST(Stats, TimeSeriesWindowBoundaries) {
  // Samples at cycle k*W-1 and k*W must land in DIFFERENT windows: the
  // bucket covers [k*W, (k+1)*W).
  TimeSeries ts(100);
  ts.add(99, 1.0);
  ts.add(100, 2.0);
  ts.add(199, 3.0);
  ts.add(200, 4.0);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_EQ(pts[0].count, 1u);
  EXPECT_EQ(pts[1].window_start, 100u);
  EXPECT_EQ(pts[1].count, 2u);
  EXPECT_DOUBLE_EQ(pts[1].mean, 2.5);
  EXPECT_EQ(pts[2].window_start, 200u);
  EXPECT_EQ(pts[2].count, 1u);
}

TEST(Stats, TimeSeriesCycleZero) {
  TimeSeries ts(50);
  ts.add(0, 9.0);
  auto pts = ts.points();
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_DOUBLE_EQ(pts[0].mean, 9.0);
}

TEST(Stats, TimeSeriesMergeCombinesOverlappingWindows) {
  TimeSeries a(100), b(100);
  a.add(10, 1.0);
  a.add(250, 5.0);
  b.add(20, 3.0);   // overlaps a's first window
  b.add(400, 8.0);  // new window
  a.merge(b);
  auto pts = a.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_EQ(pts[0].count, 2u);
  EXPECT_DOUBLE_EQ(pts[0].mean, 2.0);
  EXPECT_EQ(pts[1].window_start, 200u);
  EXPECT_EQ(pts[2].window_start, 400u);
  EXPECT_DOUBLE_EQ(pts[2].mean, 8.0);
}

// ------------------------------------------------------------------ config

TEST(Config, TypedAccessAndDefaults) {
  Config c;
  c.set("a", 42ll);
  c.set("b", 2.5);
  c.set("flag", true);
  c.set("s", std::string("hello"));
  EXPECT_EQ(c.get_int("a"), 42);
  EXPECT_DOUBLE_EQ(c.get_double("b"), 2.5);
  EXPECT_TRUE(c.get_bool("flag"));
  EXPECT_EQ(c.get_string("s"), "hello");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("a"), 42.0);  // int readable as double
}

TEST(Config, MissingKeyThrows) {
  Config c;
  EXPECT_THROW(c.get_int("nope"), std::logic_error);
  EXPECT_THROW(c.get_string("nope"), std::logic_error);
}

TEST(Config, TypeErrorsThrow) {
  Config c;
  c.set("s", std::string("abc"));
  EXPECT_THROW(c.get_int("s"), std::logic_error);
  EXPECT_THROW(c.get_bool("s"), std::logic_error);
}

TEST(Config, ParseArgs) {
  const char* argv[] = {"prog", "x=1", "noise", "y = 2.5", "name=mesh"};
  Config c;
  c.parse_args(5, const_cast<char**>(argv));
  EXPECT_EQ(c.get_int("x"), 1);
  EXPECT_DOUBLE_EQ(c.get_double("y"), 2.5);
  EXPECT_EQ(c.get_string("name"), "mesh");
  EXPECT_FALSE(c.has("noise"));
}

TEST(Config, ParseTextWithComments) {
  Config c;
  c.parse_text("a = 1\n# comment\nb = two # trailing\n\n");
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_string("b"), "two");
}

TEST(Config, KeysSortedAndRoundTrip) {
  Config c;
  c.set("zz", 1ll);
  c.set("aa", 2ll);
  const auto keys = c.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "aa");
  Config d;
  d.parse_text(c.to_string());
  EXPECT_EQ(d.get_int("zz"), 1);
  EXPECT_EQ(d.get_int("aa"), 2);
}

TEST(RingBuffer, FifoOrderAcrossGrowth) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.size(), 100u);
  EXPECT_EQ(rb.front(), 0);
  EXPECT_EQ(rb.back(), 99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapAroundReusesStorage) {
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);
  // Steady-state churn: pop one, push one — must wrap, never grow.
  for (int i = 8; i < 1000; ++i) {
    EXPECT_EQ(rb.front(), i - 8);
    rb.pop_front();
    rb.push_back(i);
    EXPECT_EQ(rb.size(), 8u);
  }
  int expect = 992;
  for (const int v : rb) EXPECT_EQ(v, expect++);
}

TEST(RingBuffer, GrowWhileWrappedPreservesOrder) {
  RingBuffer<int> rb;
  for (int i = 0; i < 8; ++i) rb.push_back(i);
  for (int i = 0; i < 5; ++i) rb.pop_front();  // head_ now mid-array
  for (int i = 8; i < 40; ++i) rb.push_back(i);  // forces growth while wrapped
  ASSERT_EQ(rb.size(), 35u);
  for (int i = 5; i < 40; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBuffer, IndexEmplaceAndClear) {
  RingBuffer<std::pair<int, int>> rb;
  rb.emplace_back(1, 2);
  rb.emplace_back(3, 4);
  EXPECT_EQ(rb[0].first, 1);
  EXPECT_EQ(rb[1].second, 4);
  auto it = rb.begin();
  EXPECT_EQ(it->first, 1);
  ++it;
  EXPECT_EQ((*it).second, 4);
  ++it;
  EXPECT_EQ(it, rb.end());
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.begin(), rb.end());
}

}  // namespace
}  // namespace flov
