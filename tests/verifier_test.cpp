// Invariant-verifier unit tests: the verifier must stay silent on healthy
// runs (all four schemes) and must abort — with a FLOV_CHECK death — when
// handed a fabric whose conservation laws were deliberately broken.
// Also covers the drain-abort-timeout promotion into NocParams/Config
// (PROTOCOL.md §2) and the new recovery knobs' config plumbing.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "fault/fault_model.hpp"
#include "flov/flov_network.hpp"
#include "sim/experiment.hpp"
#include "verify/invariant_verifier.hpp"

namespace flov {
namespace {

NocParams small_mesh() {
  NocParams p;
  p.width = 4;
  p.height = 4;
  return p;
}

// --- healthy runs stay silent -------------------------------------------

TEST(Verifier, CleanOnExistingScenariosAllSchemes) {
  for (Scheme s : kAllSchemes) {
    SyntheticExperimentConfig cfg;
    cfg.noc = small_mesh();
    cfg.scheme = s;
    cfg.inj_rate_flits = 0.05;
    cfg.gated_fraction = s == Scheme::kBaseline ? 0.0 : 0.4;
    cfg.warmup = 2000;
    cfg.measure = 8000;
    const RunResult r = run_synthetic(cfg);  // verify defaults to on
    EXPECT_EQ(r.verifier_violations, 0u) << to_string(s);
    EXPECT_GT(r.verifier_checks, 0u) << to_string(s);
    EXPECT_EQ(r.watchdog_recoveries, 0u) << to_string(s);
  }
}

TEST(Verifier, CountsInsteadOfAbortingWhenNonFatal) {
  FlovNetwork sys(small_mesh(), FlovMode::kGeneralized, EnergyParams{});
  VerifierOptions vo;
  vo.fatal = false;
  InvariantVerifier verifier(sys, vo);
  PacketRecord rec;
  rec.packet_id = 42;
  rec.src = 0;
  rec.dest = 5;
  verifier.observe_eject(rec);
  EXPECT_EQ(verifier.violations(), 0u);
  verifier.observe_eject(rec);
  EXPECT_EQ(verifier.violations(), 1u);
  EXPECT_NE(verifier.last_violation().find("ejected 2 times"),
            std::string::npos);
}

// --- deliberate corruption must die (FLOV_CHECK fatal = throws) ----------

/// Runs `f` expecting a FLOV_CHECK failure; returns its message.
template <typename F>
std::string expect_fatal(F&& f) {
  try {
    f();
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "corruption went undetected";
  return {};
}

TEST(VerifierDeath, DoubleEjectAborts) {
  FlovNetwork sys(small_mesh(), FlovMode::kGeneralized, EnergyParams{});
  InvariantVerifier verifier(sys);  // fatal by default
  PacketRecord rec;
  rec.packet_id = 7;
  verifier.observe_eject(rec);
  const std::string msg =
      expect_fatal([&] { verifier.observe_eject(rec); });
  EXPECT_NE(msg.find("ejected 2 times"), std::string::npos) << msg;
}

TEST(VerifierDeath, CreditOverReturnAborts) {
  FlovNetwork sys(small_mesh(), FlovMode::kGeneralized, EnergyParams{});
  InvariantVerifier verifier(sys);
  // A credit nobody earned: over-return on router 5's East credit wire.
  Channel<Credit>* wire = sys.network().router(5).credit_in(Direction::East);
  ASSERT_NE(wire, nullptr);
  wire->send(0, Credit{0});
  const std::string msg = expect_fatal([&] { verifier.step(0); });
  EXPECT_NE(msg.find("credit conservation broken"), std::string::npos) << msg;
}

TEST(VerifierDeath, VanishedFlitAborts) {
  FlovNetwork sys(small_mesh(), FlovMode::kGeneralized, EnergyParams{});
  InvariantVerifier verifier(sys);
  PacketDescriptor pd;
  pd.src = 0;
  pd.dest = 3;  // straight east across row 0
  pd.size_flits = 4;
  sys.network().enqueue(pd);
  Channel<Flit>* wire = sys.network().flit_channel(0, Direction::East);
  ASSERT_NE(wire, nullptr);
  Cycle now = 0;
  while (wire->empty() && now < 50) {
    sys.step(now);
    verifier.step(now);
    ++now;
  }
  ASSERT_FALSE(wire->empty()) << "flit never reached the wire";
  wire->clear();  // unaccounted loss: not a registered fault
  const std::string msg = expect_fatal([&] { verifier.step(now); });
  EXPECT_NE(msg.find("flit conservation broken"), std::string::npos) << msg;
}

// --- drain-abort timeout: param promotion + regression (PROTOCOL.md §2) --

TEST(DrainAbort, TimeoutIsConfigurableViaConfig) {
  Config cfg;
  cfg.set("noc.drain_abort_timeout", 123ll);
  cfg.set("noc.hs_retry_timeout", 11ll);
  cfg.set("noc.hs_retry_limit", 3ll);
  cfg.set("noc.trigger_retry_timeout", 44ll);
  cfg.set("noc.sleep_reannounce_interval", 55ll);
  cfg.set("noc.psr_block_timeout", 66ll);
  const NocParams p = NocParams::from_config(cfg);
  EXPECT_EQ(p.drain_abort_timeout, 123u);
  EXPECT_EQ(p.hs_retry_timeout, 11u);
  EXPECT_EQ(p.hs_retry_limit, 3);
  EXPECT_EQ(p.trigger_retry_timeout, 44u);
  EXPECT_EQ(p.sleep_reannounce_interval, 55u);
  EXPECT_EQ(p.psr_block_timeout, 66u);
  EXPECT_EQ(NocParams{}.drain_abort_timeout, 2048u);  // Table-I era default
}

TEST(DrainAbort, StalledDrainAbortsWithinTimeout) {
  NocParams p = small_mesh();
  p.drain_idle_threshold = 4;
  p.drain_abort_timeout = 64;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  InvariantVerifier verifier(sys);
  // Hotspot: row 1 and column 3 flood node 7, congesting the 5 -> 6 -> 7
  // path. Gating core 5 mid-congestion starts a drain that cannot empty
  // router 5's buffers; the deadline must kick it back to Active instead
  // of wedging in Draining forever.
  Cycle now = 0;
  for (; now < 2000; ++now) {
    if (now % 2 == 0) {
      for (NodeId s : {4, 3, 11, 15}) {
        PacketDescriptor pd;
        pd.src = s;
        pd.dest = 7;
        pd.size_flits = 4;
        pd.gen_cycle = now;
        sys.network().enqueue(pd);
      }
    }
    if (now == 200) sys.set_core_gated(5, true, now);
    sys.step(now);
    verifier.step(now);
    if (sys.hsc(5).drain_aborts() > 0) break;
  }
  EXPECT_GE(sys.hsc(5).drain_aborts(), 1u)
      << "drain neither completed nor hit the abort deadline";
  EXPECT_EQ(verifier.violations(), 0u);
}

}  // namespace
}  // namespace flov
