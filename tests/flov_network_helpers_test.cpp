// Direct tests of the FlovNetwork support machinery: path_clear queries,
// wakeup-trigger dedup, protocol statistics, and rectangular meshes (the
// AON column is the LAST column regardless of aspect ratio).
#include <gtest/gtest.h>

#include "flov/flov_network.hpp"

namespace flov {
namespace {

NocParams params(int w, int h) {
  NocParams p;
  p.width = w;
  p.height = h;
  p.drain_idle_threshold = 8;
  return p;
}

struct Harness {
  explicit Harness(NocParams p, FlovMode mode = FlovMode::kGeneralized)
      : sys(p, mode, EnergyParams{}) {
    sys.network().set_eject_callback(
        [this](const PacketRecord& r) { records.push_back(r); });
  }
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) sys.step(now++);
  }
  void send(NodeId s, NodeId d, int size = 4) {
    PacketDescriptor p;
    p.src = s;
    p.dest = d;
    p.size_flits = size;
    p.gen_cycle = now;
    sys.network().enqueue(p);
  }
  FlovNetwork sys;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

TEST(FlovHelpers, PathClearReflectsInFlightTraffic) {
  Harness h(params(4, 4));
  EXPECT_TRUE(h.sys.path_clear(4, Direction::East, 6));
  // Put a long packet in flight 4 -> 6 and check mid-transfer.
  h.send(4, 6, 6);
  h.run(6);  // flits on the wire between routers 4 and 5
  EXPECT_FALSE(h.sys.path_clear(4, Direction::East, 6));
  h.run(200);
  EXPECT_TRUE(h.sys.path_clear(4, Direction::East, 6));
}

TEST(FlovHelpers, ProtocolStatsAccumulate) {
  Harness h(params(4, 4));
  h.sys.set_core_gated(5, true, 0);
  h.run(200);
  auto s = h.sys.protocol_stats(h.now);
  EXPECT_EQ(s.sleeps, 1u);
  EXPECT_EQ(s.wakeups, 0u);
  EXPECT_GT(s.sleep_cycles, 100u);
  EXPECT_GT(s.avg_gated_routers, 0.4);  // asleep most of the run
  h.sys.set_core_gated(5, false, h.now);
  h.run(200);
  s = h.sys.protocol_stats(h.now);
  EXPECT_EQ(s.wakeups, 1u);
}

TEST(FlovHelpers, WakeupTriggerDedupes) {
  Harness h(params(4, 4));
  h.sys.set_core_gated(5, true, 0);
  h.run(200);
  ASSERT_EQ(h.sys.hsc(5).state(), PowerState::kSleep);
  const auto before = h.sys.power().event_count(EnergyEvent::kHandshakeSignal);
  // Many requests for the same target: only the first should emit a signal.
  for (int i = 0; i < 10; ++i) h.sys.request_wakeup(4, 5, h.now);
  const auto after = h.sys.power().event_count(EnergyEvent::kHandshakeSignal);
  EXPECT_EQ(after - before, 1u);
}

TEST(FlovHelpers, GatingForbiddenOnlyInAonColumn) {
  Harness h(params(4, 4));
  for (NodeId n : {3, 7, 11, 15}) EXPECT_TRUE(h.sys.gating_forbidden(n));
  for (NodeId n : {0, 1, 5, 12, 14}) EXPECT_FALSE(h.sys.gating_forbidden(n));
}

TEST(FlovHelpers, RectangularMeshWideDeliversUnderGating) {
  Harness h(params(8, 4));  // wide: AON column is x=7
  const MeshGeometry g(8, 4);
  for (NodeId n = 0; n < 32; ++n) {
    if (!g.is_aon_column(n) && (n % 3 == 0)) h.sys.set_core_gated(n, true, 0);
  }
  h.run(2000);
  int sent = 0;
  for (NodeId s = 0; s < 32; ++s) {
    for (NodeId d = 0; d < 32; ++d) {
      if (s == d || h.sys.core_gated(s) || h.sys.core_gated(d)) continue;
      if ((s + d) % 5 != 0) continue;  // sample pairs
      h.send(s, d);
      ++sent;
    }
  }
  h.run(6000);
  EXPECT_EQ(static_cast<int>(h.records.size()), sent);
}

TEST(FlovHelpers, RectangularMeshTallDeliversUnderGating) {
  Harness h(params(4, 8));  // tall: AON column is x=3
  const MeshGeometry g(4, 8);
  for (NodeId n = 0; n < 32; ++n) {
    if (!g.is_aon_column(n) && (n % 3 == 1)) h.sys.set_core_gated(n, true, 0);
  }
  h.run(2000);
  int sent = 0;
  for (NodeId s = 0; s < 32; ++s) {
    for (NodeId d = 0; d < 32; ++d) {
      if (s == d || h.sys.core_gated(s) || h.sys.core_gated(d)) continue;
      if ((s + d) % 5 != 0) continue;
      h.send(s, d);
      ++sent;
    }
  }
  h.run(6000);
  EXPECT_EQ(static_cast<int>(h.records.size()), sent);
}

TEST(FlovHelpers, SleepCyclesMatchPowerModeIntegration) {
  // Router-level mode timeline and HSC sleep-cycle accounting must agree.
  Harness h(params(4, 4));
  h.sys.set_core_gated(5, true, 0);
  h.run(500);
  ASSERT_EQ(h.sys.hsc(5).state(), PowerState::kSleep);
  const Cycle sleep_cycles = h.sys.hsc(5).sleep_cycles(h.now);
  EXPECT_GT(sleep_cycles, 400u);
  EXPECT_LT(sleep_cycles, 500u);
  EXPECT_EQ(h.sys.power().mode(5), RouterPowerMode::kFlovSleep);
}

}  // namespace
}  // namespace flov
