// Router Parking tests: parking policy, fabric-manager reconfiguration
// protocol, table routing over the parked mesh.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rp/rp_network.hpp"

namespace flov {
namespace {

NocParams small_params() {
  NocParams p;
  p.width = 4;
  p.height = 4;
  return p;
}

PacketDescriptor pkt(NodeId s, NodeId d, int size = 4, Cycle gen = 0) {
  PacketDescriptor p;
  p.src = s;
  p.dest = d;
  p.size_flits = size;
  p.gen_cycle = gen;
  return p;
}

// ----------------------------------------------------------------- policy

TEST(ParkingPolicy, NothingGatedNothingParked) {
  MeshGeometry g(4, 4);
  std::vector<bool> gated(16, false), aon(16, false);
  const auto powered = compute_parked_set(g, gated, aon, RpPolicy::kAggressive);
  for (bool on : powered) EXPECT_TRUE(on);
}

TEST(ParkingPolicy, AggressiveParksIsolatedGatedCore) {
  MeshGeometry g(4, 4);
  std::vector<bool> gated(16, false), aon(16, false);
  gated[5] = true;
  const auto powered = compute_parked_set(g, gated, aon, RpPolicy::kAggressive);
  EXPECT_FALSE(powered[5]);
  for (NodeId n = 0; n < 16; ++n) {
    if (n != 5) EXPECT_TRUE(powered[n]) << n;
  }
}

TEST(ParkingPolicy, ConnectivityPreserved) {
  MeshGeometry g(4, 4);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> gated(16, false), aon(16, false);
    int on = 16;
    for (int i = 0; i < 16; ++i) {
      gated[i] = rng.next_bool(0.6);
      on -= gated[i];
    }
    if (on == 0) gated[0] = false;  // at least one endpoint
    const auto powered =
        compute_parked_set(g, gated, aon, RpPolicy::kAggressive);
    std::vector<bool> endpoints(16);
    for (int i = 0; i < 16; ++i) endpoints[i] = !gated[i];
    EXPECT_TRUE(endpoints_connected(g, powered, endpoints));
    // Active endpoints are never parked.
    for (int i = 0; i < 16; ++i) {
      if (!gated[i]) EXPECT_TRUE(powered[i]) << i;
    }
  }
}

TEST(ParkingPolicy, AlwaysOnRespected) {
  MeshGeometry g(4, 4);
  std::vector<bool> gated(16, true), aon(16, false);
  gated[9] = false;
  aon[0] = aon[3] = aon[12] = aon[15] = true;
  const auto powered = compute_parked_set(g, gated, aon, RpPolicy::kAggressive);
  for (NodeId n : {0, 3, 12, 15, 9}) EXPECT_TRUE(powered[n]) << n;
}

TEST(ParkingPolicy, ConservativeParksSubsetOfAggressive) {
  MeshGeometry g(4, 4);
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> gated(16, false), aon(16, false);
    for (int i = 0; i < 16; ++i) gated[i] = rng.next_bool(0.5);
    gated[0] = false;
    const auto agg = compute_parked_set(g, gated, aon, RpPolicy::kAggressive);
    const auto cons =
        compute_parked_set(g, gated, aon, RpPolicy::kConservative);
    int agg_parked = 0, cons_parked = 0;
    for (int i = 0; i < 16; ++i) {
      agg_parked += !agg[i];
      cons_parked += !cons[i];
    }
    EXPECT_LE(cons_parked, agg_parked);
  }
}

TEST(ParkingPolicy, EndpointConnectivityHelper) {
  MeshGeometry g(4, 4);
  std::vector<bool> powered(16, true), endpoints(16, false);
  endpoints[0] = endpoints[15] = true;
  EXPECT_TRUE(endpoints_connected(g, powered, endpoints));
  // Cut the mesh along column 1.
  for (NodeId n : {1, 5, 9, 13}) powered[n] = false;
  EXPECT_FALSE(endpoints_connected(g, powered, endpoints));
}

// ---------------------------------------------------------- fabric manager

TEST(FabricManager, ReconfigurationStallsAndResumes) {
  RpNetwork sys(small_params(), EnergyParams{});
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  run(10);
  EXPECT_FALSE(sys.fabric_manager().stalled());
  sys.set_core_gated(5, true, now);
  run(5);
  EXPECT_TRUE(sys.fabric_manager().stalled());
  EXPECT_FALSE(sys.injection_allowed(0));
  // Phase I is >= 750 cycles; after ~900 everything resumed.
  run(900);
  EXPECT_FALSE(sys.fabric_manager().stalled());
  EXPECT_TRUE(sys.injection_allowed(0));
  EXPECT_EQ(sys.parked_router_count(), 1);
  EXPECT_EQ(sys.fabric_manager().reconfigurations(), 1u);
  EXPECT_GE(sys.fabric_manager().last_reconfig_duration(), 750u);
}

TEST(FabricManager, QueuedPacketsAgeThroughTheStall) {
  RpNetwork sys(small_params(), EnergyParams{});
  std::vector<PacketRecord> recs;
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { recs.push_back(r); });
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  sys.set_core_gated(5, true, now);
  run(3);  // reconfiguration begins
  ASSERT_TRUE(sys.fabric_manager().stalled());
  sys.network().enqueue(pkt(0, 15, 4, now));
  run(1200);
  ASSERT_EQ(recs.size(), 1u);
  // The packet waited out the >=750-cycle Phase I in its source queue.
  EXPECT_GE(recs[0].total_latency(), 700u);
}

TEST(FabricManager, UnparkOnCoreWake) {
  RpNetwork sys(small_params(), EnergyParams{});
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  sys.set_core_gated(5, true, now);
  run(1000);
  ASSERT_EQ(sys.parked_router_count(), 1);
  sys.set_core_gated(5, false, now);
  run(1000);
  EXPECT_EQ(sys.parked_router_count(), 0);
  EXPECT_EQ(sys.fabric_manager().reconfigurations(), 2u);
}

TEST(FabricManager, PurgesPacketsToParkedDestinations) {
  RpNetwork sys(small_params(), EnergyParams{});
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  sys.set_core_gated(5, true, now);
  run(2);
  // Generated after the gating event but before reconfiguration applied.
  sys.network().enqueue(pkt(0, 5));
  run(1000);
  EXPECT_EQ(sys.fabric_manager().purged_packets(), 1u);
}

TEST(FabricManager, PurgesPacketsQueuedAtParkedSources) {
  RpNetwork sys(small_params(), EnergyParams{});
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  sys.set_core_gated(5, true, now);
  run(2);
  // Leftovers in the just-gated node's own queue: its router is about to
  // park, so they can never enter the fabric. Without the source-side
  // purge they would be injected into the parked router once the stall
  // lifts — the "flit arrived at a parked router" fatal that large-mesh
  // scalability runs hit (at 24x24+, some gated node almost always has a
  // non-empty queue at the reconfiguration instant).
  sys.network().enqueue(pkt(5, 0));
  sys.network().enqueue(pkt(5, 10));
  run(1500);
  EXPECT_EQ(sys.fabric_manager().purged_packets(), 2u);
  EXPECT_EQ(sys.parked_router_count(), 1);
}

TEST(FabricManager, MinEpochGapBatchesChanges) {
  FabricManagerConfig cfg;
  cfg.min_epoch_gap = 5000;
  RpNetwork sys(small_params(), EnergyParams{}, cfg);
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  sys.set_core_gated(1, true, now);
  run(1000);
  ASSERT_EQ(sys.fabric_manager().reconfigurations(), 1u);
  // Three more gate events inside the epoch gap -> exactly one more
  // reconfiguration once the gap expires.
  sys.set_core_gated(2, true, now);
  run(100);
  sys.set_core_gated(4, true, now);
  run(100);
  sys.set_core_gated(6, true, now);
  run(7000);
  EXPECT_EQ(sys.fabric_manager().reconfigurations(), 2u);
  // Gated {1,2,4,6}: router 4 must stay powered or corner 0 (an active
  // endpoint) would be cut off — the FM parks only 3 of the 4.
  EXPECT_EQ(sys.parked_router_count(), 3);
}

TEST(RpRouting, TrafficAvoidsParkedRoutersAndDelivers) {
  RpNetwork sys(small_params(), EnergyParams{});
  std::vector<PacketRecord> recs;
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { recs.push_back(r); });
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  for (NodeId n : {5, 6, 9}) sys.set_core_gated(n, true, now);
  run(1500);
  ASSERT_EQ(sys.parked_router_count(), 3);
  // All-to-all among the remaining active cores.
  int count = 0;
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d || sys.core_gated(s) || sys.core_gated(d)) continue;
      sys.network().enqueue(pkt(s, d));
      ++count;
    }
  }
  run(4000);
  EXPECT_EQ(static_cast<int>(recs.size()), count);
  // A parked router processed no flits.
  EXPECT_EQ(sys.network().router(5).flits_traversed(), 0u);
  EXPECT_EQ(sys.network().router(5).flits_flown_over(), 0u);
}

TEST(RpPower, ParkedRoutersDropToResidualLeakage) {
  RpNetwork sys(small_params(), EnergyParams{});
  Cycle now = 0;
  auto run = [&](Cycle n) {
    for (Cycle i = 0; i < n; ++i) sys.step(now++);
  };
  run(100);
  sys.power().begin_window(now);
  const auto base = sys.power().report(now + 1000);
  for (NodeId n : {5, 6}) sys.set_core_gated(n, true, now);
  run(1500);
  sys.power().begin_window(now);
  run(1000);
  const auto parked = sys.power().report(now);
  EXPECT_LT(parked.static_mw, base.static_mw);
}

}  // namespace
}  // namespace flov
