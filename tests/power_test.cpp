// Power/energy model tests: event energies, leakage modes, the tracker's
// window arithmetic, and the Section V-A overhead model.
#include <gtest/gtest.h>

#include "power/energy_model.hpp"
#include "power/overhead_model.hpp"
#include "power/power_tracker.hpp"

namespace flov {
namespace {

TEST(EnergyModel, DefaultsMatchTableI) {
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.pg_transition_pj, 17.7);  // Table I gating overhead
  EXPECT_DOUBLE_EQ(p.clock_freq_ghz, 2.0);     // Table I clock
}

TEST(EnergyModel, EventEnergiesPositiveAndOrdered) {
  EnergyParams p;
  for (int e = 0; e < kNumEnergyEvents; ++e) {
    EXPECT_GT(p.event_pj(static_cast<EnergyEvent>(e)), 0.0);
  }
  // A fly-over hop (latch) must cost far less than a pipeline pass.
  const double pipeline = p.event_pj(EnergyEvent::kBufferWrite) +
                          p.event_pj(EnergyEvent::kBufferRead) +
                          p.event_pj(EnergyEvent::kVcArb) +
                          p.event_pj(EnergyEvent::kSwArb) +
                          p.event_pj(EnergyEvent::kCrossbar);
  EXPECT_LT(p.event_pj(EnergyEvent::kFlovLatch), pipeline / 3);
}

TEST(EnergyModel, LeakageModes) {
  EnergyParams p;
  const double on = p.router_leak(RouterPowerMode::kOn, false);
  const double flov_on = p.router_leak(RouterPowerMode::kOn, true);
  const double sleep = p.router_leak(RouterPowerMode::kFlovSleep, true);
  const double parked = p.router_leak(RouterPowerMode::kRpParked, false);
  EXPECT_GT(flov_on, on);       // FLOV hardware pays a small overhead
  EXPECT_LT(sleep, on * 0.10);  // gating removes nearly all leakage
  EXPECT_LT(parked, sleep);     // full park beats FLOV sleep residual
}

TEST(EnergyModel, LinkLeakFollowsDriverState) {
  EnergyParams p;
  EXPECT_DOUBLE_EQ(p.link_leak(RouterPowerMode::kOn), p.link_leak_mw);
  // FLOV keeps links alive while sleeping; RP parks them.
  EXPECT_DOUBLE_EQ(p.link_leak(RouterPowerMode::kFlovSleep), p.link_leak_mw);
  EXPECT_LT(p.link_leak(RouterPowerMode::kRpParked), p.link_leak_mw);
}

TEST(EnergyModel, ConfigOverrides) {
  Config c;
  c.set("energy.link_pj", 9.5);
  c.set("energy.router_leak_mw", 3.25);
  const EnergyParams p = EnergyParams::from_config(c);
  EXPECT_DOUBLE_EQ(p.link_pj, 9.5);
  EXPECT_DOUBLE_EQ(p.router_leak_mw, 3.25);
  EXPECT_DOUBLE_EQ(p.pg_transition_pj, 17.7);  // untouched default
}

TEST(EnergyModel, LeakEnergyConversion) {
  EnergyParams p;  // 2 GHz: 1 mW over 2000 cycles = 1e-3 W * 1e-6 s = 1 nJ
  EXPECT_DOUBLE_EQ(p.leak_energy_pj(1.0, 2000), 1000.0);
}

TEST(PowerTracker, StaticEnergyIntegratesModes) {
  MeshGeometry g(2, 2);
  EnergyParams p;
  p.router_leak_mw = 2.0;
  p.link_leak_mw = 0.0;
  p.flov_active_overhead_fraction = 0.0;
  p.rp_park_leak_fraction = 0.0;
  PowerTracker t(g, p, /*flov_hardware=*/false);
  // 4 routers at 2 mW for 1000 cycles @2GHz: E = 4*2*1000/2 = 4000 pJ.
  const auto r = t.report(1000);
  EXPECT_DOUBLE_EQ(r.static_energy_pj, 4000.0);
  EXPECT_DOUBLE_EQ(r.static_mw, 8.0);
}

TEST(PowerTracker, ModeChangeSplitsIntegration) {
  MeshGeometry g(2, 2);
  EnergyParams p;
  p.router_leak_mw = 2.0;
  p.link_leak_mw = 0.0;
  p.flov_active_overhead_fraction = 0.0;
  p.rp_park_leak_fraction = 0.0;
  PowerTracker t(g, p, false);
  t.set_mode(0, RouterPowerMode::kRpParked, 500);  // off for half the window
  const auto r = t.report(1000);
  // Routers 1..3: 2mW*1000cyc; router 0: 2mW*500cyc.
  EXPECT_DOUBLE_EQ(r.static_energy_pj, (3 * 1000 + 500) * 1.0);
}

TEST(PowerTracker, DynamicEventsAccumulate) {
  MeshGeometry g(2, 2);
  EnergyParams p;
  PowerTracker t(g, p, false);
  t.count(EnergyEvent::kLinkTraversal, 10);
  t.count(EnergyEvent::kPgTransition, 2);
  const auto r = t.report(100);
  EXPECT_DOUBLE_EQ(r.dynamic_energy_pj, 10 * p.link_pj + 2 * 17.7);
  EXPECT_EQ(t.event_count(EnergyEvent::kLinkTraversal), 10u);
}

TEST(PowerTracker, WindowResetsCounts) {
  MeshGeometry g(2, 2);
  EnergyParams p;
  PowerTracker t(g, p, false);
  t.count(EnergyEvent::kCrossbar, 100);
  t.begin_window(500);
  t.count(EnergyEvent::kCrossbar, 1);
  const auto r = t.report(600);
  EXPECT_DOUBLE_EQ(r.dynamic_energy_pj, p.crossbar_pj);
  EXPECT_EQ(r.cycles, 100u);
}

TEST(PowerTracker, FlovHardwarePaysOverheadWhenOn) {
  MeshGeometry g(2, 2);
  EnergyParams p;
  p.link_leak_mw = 0.0;
  PowerTracker flov(g, p, true);
  PowerTracker base(g, p, false);
  EXPECT_GT(flov.report(1000).static_energy_pj,
            base.report(1000).static_energy_pj);
}

TEST(OverheadModel, MatchesPaperSectionVA) {
  const OverheadReport r = compute_overhead(OverheadInputs{});
  // 2 sets x 4 entries x 2 bits = 16 PSR bits.
  EXPECT_EQ(r.psr_bits, 16);
  // 6 control wires to each adjacent neighbor.
  EXPECT_EQ(r.hsc_wires_per_neighbor, 6);
  // ~2.8e-3 mm^2 total, ~3% of the baseline router.
  EXPECT_NEAR(r.total_overhead_mm2, 2.8e-3, 0.4e-3);
  EXPECT_NEAR(r.overhead_fraction, 0.03, 0.01);
}

TEST(OverheadModel, ScalesWithFlitWidth) {
  OverheadInputs narrow;
  narrow.flit_width_bits = 64;
  const auto wide = compute_overhead(OverheadInputs{});
  const auto half = compute_overhead(narrow);
  EXPECT_LT(half.latch_area_mm2, wide.latch_area_mm2);
  EXPECT_EQ(half.psr_bits, wide.psr_bits);  // PSRs independent of width
}

}  // namespace
}  // namespace flov
