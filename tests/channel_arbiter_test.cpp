// Unit tests for the pipelined channel and the round-robin arbiter.
#include <gtest/gtest.h>

#include "noc/arbiter.hpp"
#include "noc/channel.hpp"

namespace flov {
namespace {

TEST(Channel, DeliversAfterLatency) {
  Channel<int> ch(1);
  ch.send(10, 7);
  EXPECT_FALSE(ch.recv(10).has_value());  // not yet visible
  auto v = ch.recv(11);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(ch.recv(12).has_value());
}

TEST(Channel, MultiCycleLatency) {
  Channel<int> ch(3);
  ch.send(0, 1);
  EXPECT_FALSE(ch.recv(2).has_value());
  EXPECT_TRUE(ch.recv(3).has_value());
}

TEST(Channel, FifoOrderPreserved) {
  Channel<int> ch(1);
  for (int i = 0; i < 5; ++i) ch.send(i, i);
  for (int i = 0; i < 5; ++i) {
    auto v = ch.recv(100);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(Channel, RecvAllDrainsDueItems) {
  Channel<int> ch(1);
  ch.send(0, 1);
  ch.send(0, 2);
  ch.send(5, 3);
  const auto due = ch.recv_all(1);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 1);
  EXPECT_EQ(due[1], 2);
  EXPECT_EQ(ch.in_flight(), 1u);
}

TEST(Channel, ClearVoidsInFlight) {
  Channel<int> ch(1);
  ch.send(0, 1);
  ch.clear();
  EXPECT_TRUE(ch.empty());
  EXPECT_FALSE(ch.recv(10).has_value());
}

TEST(Channel, ForEachInFlightVisitsAll) {
  Channel<int> ch(2);
  ch.send(0, 5);
  ch.send(1, 6);
  int sum = 0;
  ch.for_each_in_flight([&](int v) { sum += v; });
  EXPECT_EQ(sum, 11);
}

TEST(Arbiter, GrantsOnlyRequesters) {
  RoundRobinArbiter a(4);
  EXPECT_EQ(a.arbitrate({false, false, false, false}), -1);
  EXPECT_EQ(a.arbitrate({false, false, true, false}), 2);
}

TEST(Arbiter, RotatesPastWinner) {
  RoundRobinArbiter a(3);
  std::vector<bool> all{true, true, true};
  EXPECT_EQ(a.arbitrate(all), 0);
  EXPECT_EQ(a.arbitrate(all), 1);
  EXPECT_EQ(a.arbitrate(all), 2);
  EXPECT_EQ(a.arbitrate(all), 0);
}

TEST(Arbiter, FairUnderContention) {
  RoundRobinArbiter a(4);
  std::vector<int> grants(4, 0);
  std::vector<bool> req{true, true, true, true};
  for (int i = 0; i < 400; ++i) grants[a.arbitrate(req)]++;
  for (int g : grants) EXPECT_EQ(g, 100);
}

TEST(Arbiter, SkipsNonRequesters) {
  RoundRobinArbiter a(4);
  std::vector<bool> req{true, false, true, false};
  EXPECT_EQ(a.arbitrate(req), 0);
  EXPECT_EQ(a.arbitrate(req), 2);
  EXPECT_EQ(a.arbitrate(req), 0);
}

class ArbiterSizes : public ::testing::TestWithParam<int> {};

TEST_P(ArbiterSizes, EveryRequesterEventuallyWins) {
  const int n = GetParam();
  RoundRobinArbiter a(n);
  std::vector<bool> req(n, true);
  std::vector<bool> won(n, false);
  for (int i = 0; i < 2 * n; ++i) {
    const int w = a.arbitrate(req);
    ASSERT_GE(w, 0);
    won[w] = true;
  }
  for (int i = 0; i < n; ++i) EXPECT_TRUE(won[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArbiterSizes,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 20));

}  // namespace
}  // namespace flov
