// Tests for destination partitioning (Fig. 4a) and the routing functions,
// including the worked examples of the paper's Fig. 5.
#include <gtest/gtest.h>

#include "common/geometry.hpp"
#include "routing/flov_routing.hpp"
#include "routing/partition.hpp"
#include "routing/yx_routing.hpp"

namespace flov {
namespace {

Flit make_flit(NodeId src, NodeId dest, bool escape = false) {
  Flit f;
  f.head = true;
  f.tail = true;
  f.src = src;
  f.dest = dest;
  f.escape = escape;
  return f;
}

// ------------------------------------------------------------- partitions

TEST(Partition, StraightPartitions) {
  MeshGeometry g(4, 4);
  // Around router 5 at (1,1).
  EXPECT_EQ(partition_of(g, 5, 1), 1);   // due North
  EXPECT_EQ(partition_of(g, 5, 4), 3);   // due West
  EXPECT_EQ(partition_of(g, 5, 13), 5);  // due South
  EXPECT_EQ(partition_of(g, 5, 7), 7);   // due East
  EXPECT_EQ(partition_of(g, 5, 5), -1);  // self
}

TEST(Partition, QuadrantPartitions) {
  MeshGeometry g(4, 4);
  EXPECT_EQ(partition_of(g, 5, 2), 0);   // NE
  EXPECT_EQ(partition_of(g, 5, 0), 2);   // NW
  EXPECT_EQ(partition_of(g, 5, 12), 4);  // SW
  EXPECT_EQ(partition_of(g, 5, 15), 6);  // SE
}

TEST(Partition, HelpersMatchCompass) {
  EXPECT_EQ(straight_direction(1), Direction::North);
  EXPECT_EQ(straight_direction(3), Direction::West);
  EXPECT_EQ(straight_direction(5), Direction::South);
  EXPECT_EQ(straight_direction(7), Direction::East);
  EXPECT_EQ(quadrant_y(0), Direction::North);
  EXPECT_EQ(quadrant_y(6), Direction::South);
  EXPECT_EQ(quadrant_x(2), Direction::West);
  EXPECT_EQ(quadrant_x(0), Direction::East);
}

TEST(Partition, ConsistentOnLargerMeshes) {
  MeshGeometry g(8, 8);
  // From center 27=(3,3): 36=(4,4) is SE.
  EXPECT_EQ(partition_of(g, 27, 36), 6);
  EXPECT_EQ(partition_of(g, 27, 18), 2);  // (2,2) NW
  EXPECT_EQ(partition_of(g, 27, 24), 3);  // (0,3) W
}

// ------------------------------------------------------------ YX routing

TEST(YxRouting, YFirstThenX) {
  MeshGeometry g(4, 4);
  YxRouting yx(g);
  NeighborhoodView view;
  RouteContext ctx{5, Direction::Local, &view};
  EXPECT_EQ(yx.route(ctx, make_flit(5, 13)).out, Direction::South);
  EXPECT_EQ(yx.route(ctx, make_flit(5, 15)).out, Direction::South);  // Y 1st
  EXPECT_EQ(yx.route(ctx, make_flit(5, 6)).out, Direction::East);
  EXPECT_EQ(yx.route(ctx, make_flit(5, 5)).out, Direction::Local);
}

TEST(XyRouting, XFirstThenY) {
  MeshGeometry g(4, 4);
  XyRouting xy(g);
  NeighborhoodView view;
  RouteContext ctx{5, Direction::Local, &view};
  EXPECT_EQ(xy.route(ctx, make_flit(5, 15)).out, Direction::East);  // X 1st
  EXPECT_EQ(xy.route(ctx, make_flit(5, 13)).out, Direction::South);
}

TEST(YxRouting, FollowsMinimalPath) {
  MeshGeometry g(8, 8);
  YxRouting yx(g);
  NeighborhoodView view;
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId d = 0; d < 64; ++d) {
      NodeId cur = s;
      int hops = 0;
      while (cur != d) {
        RouteContext ctx{cur, Direction::Local, &view};
        const auto dec = yx.route(ctx, make_flit(s, d));
        ASSERT_NE(dec.out, Direction::Local);
        cur = g.neighbor(cur, dec.out);
        ASSERT_NE(cur, kInvalidNode);
        ASSERT_LE(++hops, g.hops(s, d));
      }
      EXPECT_EQ(hops, g.hops(s, d));
    }
  }
}

// ----------------------------------------------------------- FLOV routing

class FlovRoutingTest : public ::testing::Test {
 protected:
  FlovRoutingTest() : g_(4, 4), r_(g_) {}

  /// A view where the listed neighbors of `at` are asleep.
  NeighborhoodView view_with_sleeping(NodeId at,
                                      std::initializer_list<Direction> dirs) {
    NeighborhoodView v;
    for (Direction d : kMeshDirections) {
      v.logical[dir_index(d)] = g_.neighbor(at, d);
    }
    for (Direction d : dirs) {
      v.physical[dir_index(d)] = PowerState::kSleep;
    }
    return v;
  }

  MeshGeometry g_;
  FlovRouting r_;
};

TEST_F(FlovRoutingTest, StraightPartitionIgnoresPowerState) {
  // Fig. 5(a): destination due East, next router power-gated -> still East
  // (the FLOV link carries it).
  auto v = view_with_sleeping(5, {Direction::East});
  RouteContext ctx{5, Direction::Local, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(5, 7)).out, Direction::East);
  EXPECT_FALSE(r_.route(ctx, make_flit(5, 7)).escape);
}

TEST_F(FlovRoutingTest, QuadrantPrefersPoweredYNeighbor) {
  auto v = view_with_sleeping(5, {});
  RouteContext ctx{5, Direction::Local, &v};
  // Dest 15 (SE quadrant): Y first (South), YX order.
  EXPECT_EQ(r_.route(ctx, make_flit(5, 15)).out, Direction::South);
}

TEST_F(FlovRoutingTest, Fig5bGatedYNeighborFallsBackToX) {
  // Fig. 5(b): at router 5, dest in partition 6 (SE), router 9 (South)
  // power-gated -> go East to router 6.
  auto v = view_with_sleeping(5, {Direction::South});
  RouteContext ctx{5, Direction::Local, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(5, 14)).out, Direction::East);
}

TEST_F(FlovRoutingTest, Fig5cBothGatedGoEastTowardAon) {
  // Fig. 5(c) at router 5: dest in partition 2 (NW: routers 1 North and 4
  // West both gated) -> forward East toward the AON column.
  auto v = view_with_sleeping(5, {Direction::North, Direction::West});
  RouteContext ctx{5, Direction::Local, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(5, 0)).out, Direction::East);
}

TEST_F(FlovRoutingTest, Fig5cNoUturnAtRouter6) {
  // Continuing Fig. 5(c): the packet arrives at router 6 from the West
  // (router 5). Router 2 (North) is gated and it cannot go back West, so
  // it continues East to router 7.
  auto v = view_with_sleeping(6, {Direction::North});
  RouteContext ctx{6, Direction::West, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(5, 0)).out, Direction::East);
}

TEST_F(FlovRoutingTest, Fig5cTurnAtRouter7) {
  // At AON router 7, dest partition 2: North neighbor 3 is powered ->
  // turn North (then West along the top row).
  auto v = view_with_sleeping(7, {});
  RouteContext ctx{7, Direction::West, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(5, 0)).out, Direction::North);
}

TEST_F(FlovRoutingTest, DeadEndDivertsToEscape) {
  // Packet arrived from the East at router 5; dest NW; both N and W
  // asleep: the only productive move is back East -> escape network.
  auto v = view_with_sleeping(5, {Direction::North, Direction::West});
  RouteContext ctx{5, Direction::East, &v};
  const auto dec = r_.route(ctx, make_flit(6, 0));
  EXPECT_TRUE(dec.escape);
  EXPECT_EQ(dec.out, Direction::East);
}

TEST_F(FlovRoutingTest, LocalDelivery) {
  auto v = view_with_sleeping(5, {});
  RouteContext ctx{5, Direction::North, &v};
  EXPECT_EQ(r_.route(ctx, make_flit(0, 5)).out, Direction::Local);
}

// --------------------------------------------------------- escape routing

TEST_F(FlovRoutingTest, EscapeStraightGoesDirect) {
  auto v = view_with_sleeping(5, {Direction::East});
  RouteContext ctx{5, Direction::Local, &v};
  EXPECT_EQ(r_.escape_route(ctx, make_flit(5, 7)).out, Direction::East);
  EXPECT_EQ(r_.escape_route(ctx, make_flit(5, 4)).out, Direction::West);
  EXPECT_EQ(r_.escape_route(ctx, make_flit(5, 1)).out, Direction::North);
  EXPECT_TRUE(r_.escape_route(ctx, make_flit(5, 1)).escape);
}

TEST_F(FlovRoutingTest, EscapeQuadrantGoesEastUntilAon) {
  auto v = view_with_sleeping(5, {});
  RouteContext ctx{5, Direction::Local, &v};
  // NW destination from a non-AON router: East regardless of power states.
  EXPECT_EQ(r_.escape_route(ctx, make_flit(5, 0)).out, Direction::East);
  // At the AON column, quadrants turn vertically.
  NeighborhoodView va = view_with_sleeping(7, {});
  RouteContext aon{7, Direction::West, &va};
  EXPECT_EQ(r_.escape_route(aon, make_flit(5, 0)).out, Direction::North);
  EXPECT_EQ(r_.escape_route(aon, make_flit(5, 12)).out, Direction::South);
}

TEST_F(FlovRoutingTest, EscapeWalkTerminatesAndUsesLegalTurnsOnly) {
  // Property: from any src/dest, the escape walk reaches the destination
  // using only the allowed turns {E->N, E->S, N->W, S->W} (Fig. 4b).
  MeshGeometry g(8, 8);
  FlovRouting r(g);
  NeighborhoodView v;  // power states are irrelevant to escape routing
  for (NodeId s = 0; s < 64; ++s) {
    for (NodeId d = 0; d < 64; ++d) {
      if (s == d) continue;
      NodeId cur = s;
      Direction last = Direction::Local;
      int steps = 0;
      while (cur != d) {
        RouteContext ctx{cur, last == Direction::Local ? Direction::Local
                                                       : opposite(last),
                         &v};
        const auto dec = r.escape_route(ctx, make_flit(s, d));
        ASSERT_NE(dec.out, Direction::Local);
        if (last != Direction::Local && dec.out != last) {
          // Check turn legality.
          const bool legal =
              (last == Direction::East && is_vertical(dec.out)) ||
              (is_vertical(last) && dec.out == Direction::West);
          ASSERT_TRUE(legal) << "illegal escape turn " << to_string(last)
                             << "->" << to_string(dec.out);
        }
        cur = g.neighbor(cur, dec.out);
        ASSERT_NE(cur, kInvalidNode);
        last = dec.out;
        ASSERT_LE(++steps, 64) << "escape walk did not terminate";
      }
    }
  }
}

}  // namespace
}  // namespace flov
