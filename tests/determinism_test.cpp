// Determinism guarantees the parallel sweep runner and the active-set
// scheduler rest on:
//   * the same config + seed always produces the same results (every run
//     owns its RNGs and network — no hidden global state),
//   * a jobs=N pool returns per-point results identical to the jobs=1
//     serial loop, in the same (submission) order,
//   * the network's O(1) cached counters agree with ground-truth recounts
//     at every probe point (the active-set fast path never desyncs).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"

// ThreadSanitizer cannot model cross-process shared-memory synchronization
// (the forked stepping workers in the noc.step_procs tests): it sees the
// futex-paired atomics in the MAP_SHARED arena as plain unordered accesses
// from processes it never instrumented. Skip only the procs= tests there.
#if defined(__SANITIZE_THREAD__)
#define FLOV_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLOV_TEST_TSAN 1
#endif
#endif
#ifndef FLOV_TEST_TSAN
#define FLOV_TEST_TSAN 0
#endif
// AddressSanitizer follows the forked workers fine (and the 8x8 / hard-fault
// procs tests run under it as real memory-error coverage of the shm arena),
// but its per-cycle slowdown multiplied by 5-way process oversubscription
// makes the 16x16 procs=4 scale test take minutes; skip only that one there.
#if defined(__SANITIZE_ADDRESS__)
#define FLOV_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FLOV_TEST_ASAN 1
#endif
#endif
#ifndef FLOV_TEST_ASAN
#define FLOV_TEST_ASAN 0
#endif

namespace flov {
namespace {

SyntheticExperimentConfig small_config(Scheme s, double gated,
                                       std::uint64_t seed) {
  SyntheticExperimentConfig ex;
  ex.noc.width = 4;
  ex.noc.height = 4;
  ex.scheme = s;
  ex.pattern = "uniform";
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = gated;
  ex.warmup = 500;
  ex.measure = 3000;
  ex.seed = seed;
  return ex;
}

// Every field that the figure tables/CSVs consume; exact equality — these
// runs must be bit-identical, not statistically close.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.breakdown.router, b.breakdown.router);
  EXPECT_EQ(a.breakdown.link, b.breakdown.link);
  EXPECT_EQ(a.breakdown.serialization, b.breakdown.serialization);
  EXPECT_EQ(a.breakdown.contention, b.breakdown.contention);
  EXPECT_EQ(a.breakdown.flov, b.breakdown.flov);
  EXPECT_EQ(a.power.static_mw, b.power.static_mw);
  EXPECT_EQ(a.power.dynamic_mw, b.power.dynamic_mw);
  EXPECT_EQ(a.power.total_mw, b.power.total_mw);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.injected_flits, b.injected_flits);
  EXPECT_EQ(a.ejected_flits, b.ejected_flits);
  EXPECT_EQ(a.escape_packets, b.escape_packets);
  EXPECT_EQ(a.gated_routers_end, b.gated_routers_end);
  EXPECT_EQ(a.avg_gated_routers, b.avg_gated_routers);
  EXPECT_EQ(a.protocol_sleeps, b.protocol_sleeps);
  EXPECT_EQ(a.protocol_wakeups, b.protocol_wakeups);
  EXPECT_EQ(a.verifier_violations, b.verifier_violations);
}

TEST(Determinism, SameConfigSameSeedTwiceIsBitIdentical) {
  for (Scheme s : kAllSchemes) {
    const SyntheticExperimentConfig ex = small_config(s, 0.4, 7);
    const RunResult a = run_synthetic(ex);
    const RunResult b = run_synthetic(ex);
    SCOPED_TRACE(to_string(s));
    expect_identical(a, b);
  }
}

TEST(Determinism, ParallelSweepMatchesSerialSweepPerPoint) {
  std::vector<SyntheticExperimentConfig> points;
  for (Scheme s : kAllSchemes) {
    for (double gated : {0.0, 0.5}) {
      points.push_back(small_config(s, gated, 3));
    }
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions pooled;
  pooled.jobs = 4;
  const std::vector<RunResult> a = run_sweep(points, serial);
  const std::vector<RunResult> b = run_sweep(points, pooled);
  ASSERT_EQ(a.size(), points.size());
  ASSERT_EQ(b.size(), points.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a[i], b[i]);
  }
}

TEST(Determinism, SweepProgressReportsEveryPointOnce) {
  std::vector<SyntheticExperimentConfig> points(
      4, small_config(Scheme::kGFlov, 0.3, 5));
  SweepOptions opts;
  opts.jobs = 2;
  int calls = 0;
  int last_done = 0;
  opts.progress = [&](int done, int total) {
    calls++;
    EXPECT_EQ(total, 4);
    EXPECT_GT(done, last_done);  // serialized, monotone
    last_done = done;
  };
  run_sweep(points, opts);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(last_done, 4);
}

TEST(Determinism, ParallelRunRethrowsLowestIndexError) {
  for (int trial = 0; trial < 3; ++trial) {
    try {
      parallel_run(8, 4, [](int i) {
        if (i == 2 || i == 5) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 2");
    }
  }
}

// --- intra-run domain-parallel stepping (noc.step_threads) ---
//
// The parallel schedule is deterministic BY CONSTRUCTION (>= 1-cycle channel
// latency means a send at cycle t is first observable at t+1, so tile
// domains stepped concurrently see exactly the serial cycle-t state); these
// tests pin the construction down: threads=N must be bit-identical to
// threads=1, not merely statistically equivalent.

SyntheticExperimentConfig sized_config(Scheme s, int k, double gated,
                                       std::uint64_t seed, int threads) {
  SyntheticExperimentConfig ex = small_config(s, gated, seed);
  ex.noc.width = k;
  ex.noc.height = k;
  ex.noc.step_threads = threads;
  return ex;
}

TEST(Determinism, ThreadedStepMatchesSerial8x8AllSchemes) {
  for (Scheme s : kAllSchemes) {
    const RunResult serial = run_synthetic(sized_config(s, 8, 0.4, 7, 1));
    for (int threads : {2, 4}) {
      const RunResult par = run_synthetic(sized_config(s, 8, 0.4, 7, threads));
      SCOPED_TRACE(std::string(to_string(s)) + " threads=" +
                   std::to_string(threads));
      expect_identical(serial, par);
    }
  }
}

TEST(Determinism, ThreadedStepMatchesSerial16x16) {
  for (Scheme s : kAllSchemes) {
    SyntheticExperimentConfig ex = sized_config(s, 16, 0.3, 13, 1);
    ex.warmup = 200;
    ex.measure = 1200;  // short: 16x16 runs 16x the 4x4 work per cycle
    const RunResult serial = run_synthetic(ex);
    ex.noc.step_threads = 4;
    const RunResult par = run_synthetic(ex);
    SCOPED_TRACE(to_string(s));
    expect_identical(serial, par);
  }
}

TEST(Determinism, ThreadedStepMatchesSerialUnderFaultInjection) {
  // Flit fates are pure hashes of (seed, packet, link[, flit, cycle]) so
  // they cannot depend on the worker schedule; prove it end to end.
  SyntheticExperimentConfig ex = sized_config(Scheme::kGFlov, 8, 0.5, 21, 1);
  // A dropped announcement in this static gating scenario legitimately
  // leaves a PSR stale forever (nothing re-announces without churn), so the
  // PSR check would flag the fault model, not a bug. Conservation and
  // credit checks stay on — those must hold under loss.
  ex.verifier.check_psr = false;
  ex.faults.seed = 21;
  ex.faults.flit_drop_rate = 0.0005;
  ex.faults.flit_delay_rate = 0.001;
  ex.faults.signal_drop_rate = 0.001;
  const RunResult serial = run_synthetic(ex);
  for (int threads : {2, 4}) {
    ex.noc.step_threads = threads;
    const RunResult par = run_synthetic(ex);
    SCOPED_TRACE(threads);
    expect_identical(serial, par);
    EXPECT_EQ(serial.flits_dropped_by_faults, par.flits_dropped_by_faults);
  }
}

TEST(Determinism, ThreadedHardFaultRunManifestBytesMatchSerial) {
  // Hard faults (routers DIE mid-run) + the reliable-delivery layer on
  // top, threads=4 vs threads=1: fate hashes are schedule-independent and
  // the incident/metric emission order is pinned to node-id order, so the
  // whole run manifest — metrics, incidents, counters — must byte-match.
  SyntheticExperimentConfig ex = sized_config(Scheme::kGFlov, 8, 0.3, 31, 1);
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 64;
  ex.drain_max = 20000;
  ex.max_cycles_hard = 100000;
  ex.verifier.fatal = false;
  ex.verifier.settle_window = 512;
  ex.faults.seed = 31;
  ex.faults.hard_router_pct = 0.08;
  ex.faults.hard_link_pct = 0.04;
  ex.faults.hard_at_cycle = ex.warmup + ex.measure / 3;

  const auto manifest_of = [](const RunResult& r) {
    telemetry::RunManifest m;
    m.name = "determinism_test";
    m.scheme = r.scheme;
    m.seed = 31;
    m.metrics = r.metrics.get();
    m.incidents = r.incidents.get();
    return m.to_json();  // volatile fields left at defaults on both sides
  };
  const RunResult serial = run_synthetic(ex);
  ASSERT_GT(serial.dead_routers, 0);
  ASSERT_FALSE(serial.aborted);
  for (int threads : {2, 4}) {
    ex.noc.step_threads = threads;
    const RunResult par = run_synthetic(ex);
    SCOPED_TRACE(threads);
    expect_identical(serial, par);
    EXPECT_EQ(serial.packets_acked, par.packets_acked);
    EXPECT_EQ(serial.packets_dead, par.packets_dead);
    EXPECT_EQ(serial.retransmits, par.retransmits);
    EXPECT_EQ(serial.dead_routers, par.dead_routers);
    EXPECT_EQ(serial.dead_links, par.dead_links);
    EXPECT_EQ(manifest_of(serial), manifest_of(par));
  }
}

TEST(Determinism, ThreadCountAboveMeshHeightClampsAndStaysIdentical) {
  // step_threads > height cannot create more row bands than rows; the
  // clamped pool must still match serial exactly.
  const RunResult serial = run_synthetic(sized_config(Scheme::kRp, 4, 0.3, 9, 1));
  const RunResult par = run_synthetic(sized_config(Scheme::kRp, 4, 0.3, 9, 16));
  expect_identical(serial, par);
}

// --- 2D tile domains (noc.step_tiles_x/y, CLI tiles=TXxTY) ---
//
// Row bands are the auto policy; explicit tile grids additionally stage
// East/West boundary channels and break the "domain order == node-id
// order" property row bands had, which the barrier-side k-way merges must
// compensate for. Byte-identical manifests are the strongest equality we
// can assert: metrics, latency stats (order-sensitive floating point),
// incidents and counters all have to match.

std::string manifest_json(const RunResult& r, std::uint64_t seed) {
  telemetry::RunManifest m;
  m.name = "determinism_test";
  m.scheme = r.scheme;
  m.seed = seed;
  m.metrics = r.metrics.get();
  m.incidents = r.incidents.get();
  return m.to_json();  // volatile fields left at defaults on both sides
}

TEST(Determinism, TileGridMatchesRowBandsAndSerial8x8AllSchemes) {
  // Fault-seeded: fates are pure hashes of (seed, packet, link, ...) so no
  // tiling may perturb them (see ThreadedStepMatchesSerialUnderFaultInjection
  // for why check_psr is off under signal loss).
  for (Scheme s : kAllSchemes) {
    SyntheticExperimentConfig ex = sized_config(s, 8, 0.4, 17, 1);
    ex.verifier.check_psr = false;
    ex.faults.seed = 17;
    ex.faults.flit_drop_rate = 0.0005;
    ex.faults.signal_drop_rate = 0.001;
    const RunResult serial = run_synthetic(ex);
    const std::string serial_manifest = manifest_json(serial, 17);
    ex.noc.step_threads = 4;  // auto policy: 4 row bands
    const RunResult rows = run_synthetic(ex);
    {
      SCOPED_TRACE(std::string(to_string(s)) + " rows threads=4");
      expect_identical(serial, rows);
      EXPECT_EQ(serial_manifest, manifest_json(rows, 17));
    }
    const std::pair<int, int> grids[] = {{2, 2}, {4, 1}, {2, 4}};
    for (const auto& [tx, ty] : grids) {
      ex.noc.step_tiles_x = tx;
      ex.noc.step_tiles_y = ty;
      const RunResult tiles = run_synthetic(ex);
      SCOPED_TRACE(std::string(to_string(s)) + " tiles=" +
                   std::to_string(tx) + "x" + std::to_string(ty));
      expect_identical(serial, tiles);
      EXPECT_EQ(serial_manifest, manifest_json(tiles, 17));
    }
  }
}

TEST(Determinism, TileGridMatchesSerial16x16AllSchemes) {
  for (Scheme s : kAllSchemes) {
    SyntheticExperimentConfig ex = sized_config(s, 16, 0.3, 23, 1);
    ex.warmup = 200;
    ex.measure = 1200;  // short: 16x16 runs 16x the 4x4 work per cycle
    ex.verifier.check_psr = false;
    ex.faults.seed = 23;
    ex.faults.flit_drop_rate = 0.0003;
    const RunResult serial = run_synthetic(ex);
    const std::string serial_manifest = manifest_json(serial, 23);
    const std::pair<int, int> grids[] = {{2, 2}, {4, 2}};
    for (const auto& [tx, ty] : grids) {
      ex.noc.step_tiles_x = tx;
      ex.noc.step_tiles_y = ty;
      const RunResult tiles = run_synthetic(ex);
      SCOPED_TRACE(std::string(to_string(s)) + " tiles=" +
                   std::to_string(tx) + "x" + std::to_string(ty));
      expect_identical(serial, tiles);
      EXPECT_EQ(serial_manifest, manifest_json(tiles, 23));
    }
  }
}

TEST(Determinism, TileCountAboveMeshDimsClampsAndStaysIdentical) {
  // tiles=16x2 on a 4x4 mesh clamps the columns to the mesh width (4x2 =
  // 8 single-row-pair domains); the clamped grid must still match serial.
  SyntheticExperimentConfig ex = sized_config(Scheme::kGFlov, 4, 0.3, 9, 1);
  const RunResult serial = run_synthetic(ex);
  ex.noc.step_tiles_x = 16;
  ex.noc.step_tiles_y = 2;
  const RunResult par = run_synthetic(ex);
  expect_identical(serial, par);
}

// --- multi-process stepping (noc.step_procs, CLI procs=) ---
//
// procs=N forks N-1 stepping worker processes over a shared-memory arena
// holding the whole network; cross-process traffic travels through the SAME
// staged boundary channels threads= uses (the arena makes them genuinely
// shared pages), and the parent replays the identical barrier-side merges.
// So procs=N inherits the full determinism argument — and these tests hold
// it to the same standard as threads=: byte-identical manifests, not
// statistical closeness. (See docs/PERFORMANCE.md, "Multi-process
// stepping".)

SyntheticExperimentConfig procs_config(Scheme s, int k, double gated,
                                       std::uint64_t seed, int procs,
                                       int threads = 1) {
  SyntheticExperimentConfig ex = sized_config(s, k, gated, seed, threads);
  ex.noc.step_procs = procs;
  return ex;
}

TEST(Determinism, MultiProcessStepMatchesSerial8x8AllSchemes) {
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  for (Scheme s : kAllSchemes) {
    const RunResult serial = run_synthetic(procs_config(s, 8, 0.4, 7, 1));
    const std::string serial_manifest = manifest_json(serial, 7);
    for (int procs : {2, 4}) {
      const RunResult par = run_synthetic(procs_config(s, 8, 0.4, 7, procs));
      SCOPED_TRACE(std::string(to_string(s)) + " procs=" +
                   std::to_string(procs));
      expect_identical(serial, par);
      EXPECT_EQ(serial_manifest, manifest_json(par, 7));
    }
  }
}

TEST(Determinism, MultiProcessStepMatchesSerial16x16Procs4AllSchemes) {
  // The PR's acceptance bar: procs=4 on 16x16 produces byte-identical
  // manifests to threads=1 for every scheme.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  if (FLOV_TEST_ASAN)
    GTEST_SKIP() << "scale test only — minutes-long under ASan "
                    "oversubscription; procs code paths are ASan-covered "
                    "by the 8x8 and hard-fault tests";
  for (Scheme s : kAllSchemes) {
    SyntheticExperimentConfig ex = procs_config(s, 16, 0.3, 13, 1);
    ex.warmup = 200;
    ex.measure = 1200;  // short: 16x16 runs 16x the 4x4 work per cycle
    const RunResult serial = run_synthetic(ex);
    const std::string serial_manifest = manifest_json(serial, 13);
    ex.noc.step_procs = 4;
    const RunResult par = run_synthetic(ex);
    SCOPED_TRACE(to_string(s));
    expect_identical(serial, par);
    EXPECT_EQ(serial_manifest, manifest_json(par, 13));
  }
}

TEST(Determinism, MultiProcessHardFaultManifestBytesMatchSerial) {
  // Hard faults + reliable delivery, stepped across process boundaries:
  // routers die, retransmits fly, incidents are recorded — and the whole
  // manifest must still byte-match serial, including with a thread pool
  // INSIDE each worker process (procs=2 x threads=2).
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  SyntheticExperimentConfig ex = procs_config(Scheme::kGFlov, 8, 0.3, 31, 1);
  ex.noc.reliable = true;
  ex.noc.retx_timeout = 64;
  ex.drain_max = 20000;
  ex.max_cycles_hard = 100000;
  ex.verifier.fatal = false;
  ex.verifier.settle_window = 512;
  ex.faults.seed = 31;
  ex.faults.hard_router_pct = 0.08;
  ex.faults.hard_link_pct = 0.04;
  ex.faults.hard_at_cycle = ex.warmup + ex.measure / 3;

  const RunResult serial = run_synthetic(ex);
  ASSERT_GT(serial.dead_routers, 0);
  ASSERT_FALSE(serial.aborted);
  const std::string serial_manifest = manifest_json(serial, 31);
  const std::pair<int, int> grids[] = {{2, 1}, {4, 1}, {2, 2}};
  for (const auto& [procs, threads] : grids) {
    ex.noc.step_procs = procs;
    ex.noc.step_threads = threads;
    const RunResult par = run_synthetic(ex);
    SCOPED_TRACE("procs=" + std::to_string(procs) + " threads=" +
                 std::to_string(threads));
    expect_identical(serial, par);
    EXPECT_EQ(serial.packets_acked, par.packets_acked);
    EXPECT_EQ(serial.packets_dead, par.packets_dead);
    EXPECT_EQ(serial.retransmits, par.retransmits);
    EXPECT_EQ(serial.dead_routers, par.dead_routers);
    EXPECT_EQ(serial.dead_links, par.dead_links);
    EXPECT_FALSE(par.worker_lost);
    EXPECT_EQ(serial_manifest, manifest_json(par, 31));
  }
}

TEST(Determinism, ProcsAboveDomainCountClampsAndStaysIdentical) {
  // procs=16 on a 4x4 mesh cannot create more worker processes than
  // domains; the clamped partition must still match serial exactly.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  const RunResult serial =
      run_synthetic(procs_config(Scheme::kGFlov, 4, 0.3, 9, 1));
  const RunResult par =
      run_synthetic(procs_config(Scheme::kGFlov, 4, 0.3, 9, 16));
  expect_identical(serial, par);
}

TEST(Determinism, WorkerKillMidRunRaisesWorkerLostAndAborts) {
  // Kill stepping worker 0 at barrier epoch 600 (mid-measure): the run must
  // abort cleanly — worker_lost flagged, a worker_lost incident recorded,
  // the run.worker_lost counter bumped — instead of hanging on the barrier
  // or crashing the parent.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  ASSERT_EQ(setenv("FLYOVER_TEST_KILL_WORKER", "0:600", 1), 0);
  const RunResult r =
      run_synthetic(procs_config(Scheme::kGFlov, 8, 0.4, 7, 2));
  unsetenv("FLYOVER_TEST_KILL_WORKER");
  EXPECT_TRUE(r.aborted);
  EXPECT_TRUE(r.worker_lost);
  EXPECT_LT(r.cycles_run, 3500u);  // warmup 500 + measure 3000
  ASSERT_TRUE(r.incidents);
  bool found = false;
  for (const std::string& rec : r.incidents->records()) {
    if (rec.find("\"kind\":\"worker_lost\"") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "no worker_lost incident recorded";
  ASSERT_TRUE(r.metrics);
  // A healthy procs= run must never create this counter (manifest parity
  // with single-process runs); a lost worker must.
  EXPECT_NE(manifest_json(r, 7).find("run.worker_lost"), std::string::npos);
}

TEST(Determinism, WorkerKillMidRunSelfHealsToByteIdenticalManifest) {
  // The tentpole invariant of the self-healing runtime: kill a stepping
  // worker mid-run with checkpoints armed, and the recovered run's
  // manifest is BYTE-IDENTICAL to both an undisturbed procs=2 run and the
  // serial threads=1 run — the rollback + replay is invisible to results.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  for (Scheme s : {Scheme::kGFlov, Scheme::kBaseline}) {
    SCOPED_TRACE(to_string(s));
    const RunResult serial = run_synthetic(procs_config(s, 8, 0.4, 7, 1));
    const std::string serial_manifest = manifest_json(serial, 7);
    const RunResult undisturbed =
        run_synthetic(procs_config(s, 8, 0.4, 7, 2));
    EXPECT_EQ(serial_manifest, manifest_json(undisturbed, 7));

    SyntheticExperimentConfig ex = procs_config(s, 8, 0.4, 7, 2);
    ex.snapshot_period = 512;
    ex.max_recoveries = 3;
    // The ProcPool ctor consumes (unsets) the hook, so respawned pools
    // don't re-kill; re-arm per disturbed run.
    ASSERT_EQ(setenv("FLYOVER_TEST_KILL_WORKER", "0:600", 1), 0);
    const RunResult healed = run_synthetic(ex);
    unsetenv("FLYOVER_TEST_KILL_WORKER");

    EXPECT_FALSE(healed.aborted);
    EXPECT_FALSE(healed.worker_lost);
    EXPECT_EQ(healed.recoveries, 1u);
    EXPECT_GT(healed.recovery_wall_ns, 0u);
    expect_identical(serial, healed);
    // Byte-identity is the whole point: recovery telemetry must not leak
    // into metrics or incidents.
    EXPECT_EQ(serial_manifest, manifest_json(healed, 7));
    EXPECT_EQ(manifest_json(healed, 7).find("run.worker_lost"),
              std::string::npos);
  }
}

TEST(Determinism, WorkerKilledInsideAllocatorRecoversWithoutHanging) {
  // The hardest chaos case: the worker dies while HOLDING the shared
  // arena's futex lock (inside allocate). The robust pid-owner lock must
  // detect the dead owner within its bounded wait, seize, audit, and the
  // run must self-heal to a byte-identical manifest — never hang.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  const RunResult undisturbed =
      run_synthetic(procs_config(Scheme::kGFlov, 8, 0.4, 7, 2));
  SyntheticExperimentConfig ex = procs_config(Scheme::kGFlov, 8, 0.4, 7, 2);
  ex.snapshot_period = 512;
  ASSERT_EQ(setenv("FLYOVER_TEST_KILL_IN_ALLOC", "0:600", 1), 0);
  const RunResult healed = run_synthetic(ex);
  unsetenv("FLYOVER_TEST_KILL_IN_ALLOC");
  EXPECT_FALSE(healed.aborted);
  EXPECT_FALSE(healed.worker_lost);
  EXPECT_EQ(healed.recoveries, 1u);
  expect_identical(undisturbed, healed);
  EXPECT_EQ(manifest_json(undisturbed, 7), manifest_json(healed, 7));
}

TEST(Determinism, SnapshotPeriodAloneForcesArenaAndStaysIdentical) {
  // sim.snapshot_period > 0 at procs=1 moves every run allocation into the
  // shared arena (so checkpoints cover the whole graph). The allocation
  // source must be invisible to results: byte-identical manifest to a
  // plain malloc-backed serial run.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "arena futexes confuse TSan";
  const RunResult plain =
      run_synthetic(procs_config(Scheme::kGFlov, 8, 0.4, 7, 1));
  SyntheticExperimentConfig ex = procs_config(Scheme::kGFlov, 8, 0.4, 7, 1);
  ex.snapshot_period = 1024;
  const RunResult arena = run_synthetic(ex);
  EXPECT_EQ(arena.recoveries, 0u);
  expect_identical(plain, arena);
  EXPECT_EQ(manifest_json(plain, 7), manifest_json(arena, 7));
}

TEST(Determinism, MultiProcessSweepKilledAndResumedMatchesUninterrupted) {
  // The checkpoint/resume loop composes with procs=: a sweep of procs=2
  // points killed after two completed points and resumed (still procs=2)
  // folds to byte-identical merged metrics vs the uninterrupted
  // single-process sweep. Exercises repeated arena create/teardown and
  // worker fork/reap across points in one process too.
  if (FLOV_TEST_TSAN) GTEST_SKIP() << "TSan cannot model forked workers";
  std::vector<SyntheticExperimentConfig> points;
  std::vector<SyntheticExperimentConfig> points_procs;
  for (Scheme s : {Scheme::kGFlov, Scheme::kRp}) {
    for (std::uint64_t seed : {3u, 4u}) {
      points.push_back(procs_config(s, 8, 0.4, seed, 1));
      points_procs.push_back(procs_config(s, 8, 0.4, seed, 2));
    }
  }
  SweepOptions plain;
  plain.jobs = 1;
  const std::vector<RunResult> uninterrupted = run_sweep(points, plain);
  telemetry::JsonWriter golden;
  merge_sweep_metrics(uninterrupted).write_json(golden);

  const std::string path = ::testing::TempDir() + "/flov_procs_ckpt.jsonl";
  std::remove(path.c_str());
  SweepOptions ck;
  ck.jobs = 1;
  ck.checkpoint_path = path;
  run_sweep(points_procs, ck);

  // Simulate the kill: keep only the first two checkpoint lines.
  std::string all;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) all.append(buf, n);
    std::fclose(f);
  }
  std::size_t second_nl = all.find('\n', all.find('\n') + 1);
  ASSERT_NE(second_nl, std::string::npos);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(all.data(), 1, second_nl + 1, f);
    std::fclose(f);
  }

  SweepOptions resume = ck;
  resume.resume = true;
  int progress_calls = 0;
  resume.progress = [&](int, int) { ++progress_calls; };
  const std::vector<RunResult> resumed = run_sweep(points_procs, resume);
  EXPECT_EQ(progress_calls, 2);

  telemetry::JsonWriter merged;
  merge_sweep_metrics(resumed).write_json(merged);
  EXPECT_EQ(merged.take(), golden.take());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(uninterrupted[i], resumed[i]);
  }
  std::remove(path.c_str());
}

TEST(Determinism, CachedCountersMatchRecountsDuringGatedRun) {
  // Drive a gFLOV run manually and probe the cached aggregates against the
  // ground-truth walks while routers gate, drain, sleep, and wake — in
  // Debug builds the getters also self-check via FLOV_DCHECK every call.
  SyntheticExperimentConfig ex = small_config(Scheme::kGFlov, 0.5, 11);
  ex.verifier.check_interval = 64;  // tight verifier cadence
  const RunResult r = run_synthetic(ex);
  EXPECT_EQ(r.verifier_violations, 0u);
  EXPECT_GT(r.packets_measured, 0u);
}

}  // namespace
}  // namespace flov
