// Router mode-transition hygiene: the always-on invariant checks that
// protect against protocol bugs (gating with live state, waking with
// occupied latches), plus power-tracker integration of mode changes.
#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "power/power_tracker.hpp"
#include "routing/yx_routing.hpp"

namespace flov {
namespace {

struct Harness {
  Harness()
      : params(make_params()), geom(params.width, params.height),
        routing(geom), power(geom, EnergyParams{}, true),
        net(params, &routing, &power) {
    net.set_eject_callback([this](const PacketRecord& r) {
      records.push_back(r);
    });
  }
  static NocParams make_params() {
    NocParams p;
    p.width = 3;
    p.height = 3;
    p.enable_escape_diversion = false;
    return p;
  }
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) net.step(now++);
  }

  NocParams params;
  MeshGeometry geom;
  YxRouting routing;
  PowerTracker power;
  Network net;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

TEST(RouterModes, GatingWithBufferedFlitsIsRejected) {
  Harness h;
  PacketDescriptor p;
  p.src = 0;
  p.dest = 2;
  p.size_flits = 4;
  h.net.enqueue(p);
  h.run(7);  // head has reached router 1's input buffer
  ASSERT_FALSE(h.net.router(1).input_buffers_empty());
  EXPECT_THROW(h.net.router(1).set_mode(RouterMode::kBypass, h.now),
               std::logic_error);
}

TEST(RouterModes, CleanRouterGatesAndWakes) {
  Harness h;
  h.run(5);
  Router& r = h.net.router(4);  // center of the 3x3
  r.set_mode(RouterMode::kBypass, h.now);
  EXPECT_EQ(r.mode(), RouterMode::kBypass);
  EXPECT_EQ(h.power.mode(4), RouterPowerMode::kFlovSleep);
  h.run(5);
  r.set_mode(RouterMode::kPipeline, h.now);
  EXPECT_EQ(h.power.mode(4), RouterPowerMode::kOn);
}

TEST(RouterModes, GatingChargesTransitionEnergyOncePerPair) {
  Harness h;
  const auto n0 = h.power.event_count(EnergyEvent::kPgTransition);
  h.net.router(4).set_mode(RouterMode::kBypass, h.now);
  EXPECT_EQ(h.power.event_count(EnergyEvent::kPgTransition), n0 + 1);
  h.net.router(4).set_mode(RouterMode::kPipeline, h.now);
  EXPECT_EQ(h.power.event_count(EnergyEvent::kPgTransition), n0 + 1);
  h.net.router(4).set_mode(RouterMode::kParked, h.now);
  EXPECT_EQ(h.power.event_count(EnergyEvent::kPgTransition), n0 + 2);
}

TEST(RouterModes, BypassForwardsStraightThrough) {
  // Manually gate the center router; traffic 3 -> 5 (same row through 4).
  Harness h;
  h.net.router(4).set_mode(RouterMode::kBypass, h.now);
  // Ensure upstream credits point at router 5's buffers (handover normally
  // does this; with empty buffers a full reset is equivalent).
  h.net.router(3).reset_output_credits_full(Direction::East);
  PacketDescriptor p;
  p.src = 3;
  p.dest = 5;
  p.size_flits = 4;
  p.gen_cycle = h.now;
  h.net.enqueue(p);
  h.run(40);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].flov_hops, 1);
  EXPECT_EQ(h.records[0].router_hops, 2);
}

TEST(RouterModes, ParkedRouterClearsStaleCredits) {
  Harness h;
  h.run(2);
  Router& r = h.net.router(4);
  r.set_mode(RouterMode::kParked, h.now);
  h.run(5);  // step asserts nothing arrives and voids stale credits
  EXPECT_EQ(r.mode(), RouterMode::kParked);
}

TEST(RouterModes, WakeResetsOutputAllocationState) {
  Harness h;
  Router& r = h.net.router(4);
  r.set_mode(RouterMode::kBypass, h.now);
  h.run(2);
  r.set_mode(RouterMode::kPipeline, h.now);
  for (Direction d : kMeshDirections) {
    for (const auto& ovc : r.output_port(d).vcs) {
      EXPECT_FALSE(ovc.allocated);
      EXPECT_EQ(ovc.credits, h.params.buffer_depth);
    }
  }
}

TEST(RouterModes, DumpOccupancyIsSafeOnBusyRouter) {
  Harness h;
  PacketDescriptor p;
  p.src = 0;
  p.dest = 8;
  p.size_flits = 6;
  h.net.enqueue(p);
  h.run(6);
  // Smoke: must not crash or mutate.
  h.net.router(4).dump_occupancy(h.now);
  h.run(100);
  EXPECT_EQ(h.records.size(), 1u);
}

}  // namespace
}  // namespace flov
