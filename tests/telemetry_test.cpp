// Unit tests for src/telemetry: JSON writer/parser round-trips, the
// metrics registry and its deterministic merge, the event tracer ring and
// its Chrome-trace exporter (full round-trip over every event type), run
// manifests and the structured incident sink — plus an end-to-end
// experiment check that the harness populates all three.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/structured_sink.hpp"
#include "telemetry/telemetry_options.hpp"
#include "telemetry/trace.hpp"

namespace flov {
namespace {

using telemetry::JsonValue;
using telemetry::JsonWriter;
using telemetry::MetricsRegistry;
using telemetry::StructuredSink;
using telemetry::TraceEvent;
using telemetry::TraceEventType;
using telemetry::Tracer;
using telemetry::TraceScope;

// -------------------------------------------------------------------- json

TEST(Json, WriterProducesParseableObject) {
  JsonWriter w;
  w.begin_object();
  w.kv("int", std::int64_t{-5});
  w.kv("uint", std::uint64_t{18446744073709551615ull});
  w.kv("dbl", 2.5);
  w.kv("str", "he\"llo\n\t\\");
  w.kv("flag", true);
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.null();
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.kv("k", "v");
  w.end_object();
  w.end_object();

  const JsonValue v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("int").num, -5.0);
  EXPECT_DOUBLE_EQ(v.at("dbl").num, 2.5);
  EXPECT_EQ(v.at("str").str, "he\"llo\n\t\\");
  EXPECT_TRUE(v.at("flag").b);
  ASSERT_TRUE(v.at("arr").is_array());
  ASSERT_EQ(v.at("arr").arr.size(), 3u);
  EXPECT_EQ(v.at("arr").arr[1].str, "two");
  EXPECT_EQ(v.at("arr").arr[2].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.at("nested").at("k").str, "v");
}

TEST(Json, DoubleRoundTripsBitExactly) {
  // %.17g is the manifest-determinism foundation: a double survives
  // write -> parse -> write unchanged.
  for (double x : {1.0 / 3.0, 0.1, 123456789.123456789, 2.2250738585072014e-308}) {
    JsonWriter w;
    w.begin_object();
    w.kv("x", x);
    w.end_object();
    const JsonValue v = JsonValue::parse(w.str());
    EXPECT_EQ(v.at("x").num, x);
  }
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeStatBasics) {
  MetricsRegistry reg;
  reg.counter("a.count") += 3;
  reg.counter("a.count") += 2;
  reg.gauge("a.gauge") = 1.5;
  reg.stat("a.stat").add(10);
  reg.stat("a.stat").add(20);
  EXPECT_EQ(reg.counter_value("a.count"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("a.gauge"), 1.5);
  EXPECT_DOUBLE_EQ(reg.stats().at("a.stat").mean(), 15.0);
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_FALSE(reg.has_counter("missing"));
}

TEST(Metrics, MergeCountersAddStatsFoldGaugesSample) {
  MetricsRegistry a, b;
  a.counter("n") = 2;
  b.counter("n") = 3;
  a.gauge("power_mw") = 10.0;
  b.gauge("power_mw") = 30.0;
  a.stat("lat").add(1);
  b.stat("lat").add(3);
  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 5u);
  // Gauges become samples of a same-named stat in the merged registry.
  EXPECT_EQ(a.stats().at("power_mw").count(), 1u);
  EXPECT_DOUBLE_EQ(a.stats().at("power_mw").mean(), 30.0);
  EXPECT_EQ(a.stats().at("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.stats().at("lat").mean(), 2.0);
}

TEST(Metrics, MergedJsonIsFoldOrderDeterministic) {
  // The same per-run registries folded in the same submission order must
  // serialize byte-identically — this is what makes a jobs=N sweep's
  // manifest bit-identical to jobs=1 (workers never fold concurrently;
  // run_sweep's result vector is ordered by submission index).
  auto make = [](int salt) {
    MetricsRegistry r;
    r.counter("c") = static_cast<std::uint64_t>(salt);
    r.gauge("g") = 0.1 * salt;
    r.stat("s").add(salt);
    r.histogram("h", 0, 10, 10).add(salt % 10);
    r.series("t").add(static_cast<Cycle>(salt * 100), salt);
    return r;
  };
  MetricsRegistry fold1, fold2;
  for (int i = 0; i < 5; ++i) fold1.merge(make(i));
  for (int i = 0; i < 5; ++i) fold2.merge(make(i));
  JsonWriter w1, w2;
  fold1.write_json(w1);
  fold2.write_json(w2);
  EXPECT_EQ(w1.str(), w2.str());
}

TEST(Metrics, SnapshotFlattens) {
  MetricsRegistry r;
  r.counter("c") = 7;
  r.gauge("g") = 2.5;
  r.stat("s").add(4);
  const auto snap = r.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("c"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("g"), 2.5);
  EXPECT_DOUBLE_EQ(snap.at("s.mean"), 4.0);
  EXPECT_DOUBLE_EQ(snap.at("s.count"), 1.0);
}

TEST(Metrics, RegistryJsonParses) {
  MetricsRegistry r;
  r.counter("c") = 1;
  r.histogram("h", 0, 100, 10).add(42);
  r.series("t").add(0, 1.0);
  JsonWriter w;
  r.write_json(w);
  const JsonValue v = JsonValue::parse(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("counters").at("c").num, 1.0);
  EXPECT_DOUBLE_EQ(v.at("histograms").at("h").at("count").num, 1.0);
  ASSERT_TRUE(v.at("series").at("t").at("points").is_array());
}

// ------------------------------------------------------------------ tracer

TEST(Trace, MaskParsing) {
  EXPECT_EQ(telemetry::trace_mask_from_string(""), 0u);
  EXPECT_EQ(telemetry::trace_mask_from_string("none"), 0u);
  EXPECT_EQ(telemetry::trace_mask_from_string("all"), telemetry::kTraceAll);
  EXPECT_EQ(telemetry::trace_mask_from_string("flit"), telemetry::kTraceFlit);
  EXPECT_EQ(telemetry::trace_mask_from_string("flit,power"),
            telemetry::kTraceFlit | telemetry::kTracePower);
  EXPECT_EQ(telemetry::trace_mask_from_string("0x7f"), 0x7fu);
  EXPECT_EQ(telemetry::trace_mask_from_string("5"), 5u);
}

TEST(Trace, RingRecordsInOrder) {
  Tracer t(telemetry::kTraceAll, 8);
  for (int i = 0; i < 5; ++i) {
    t.record(TraceEventType::kPacketGen, static_cast<Cycle>(i), i, 10u + i,
             20u + i);
  }
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ev[static_cast<std::size_t>(i)].cycle, static_cast<Cycle>(i));
    EXPECT_EQ(ev[static_cast<std::size_t>(i)].a, 10u + i);
  }
  EXPECT_EQ(t.overwritten(), 0u);
}

TEST(Trace, RingOverwritesOldestWhenFull) {
  Tracer t(telemetry::kTraceAll, 4);
  for (int i = 0; i < 10; ++i) {
    t.record(TraceEventType::kPacketGen, static_cast<Cycle>(i), 0, 0, 0);
  }
  const auto ev = t.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev.front().cycle, 6u);  // the most recent window survives
  EXPECT_EQ(ev.back().cycle, 9u);
  EXPECT_EQ(t.overwritten(), 6u);
}

TEST(Trace, EveryEventTypeRoundTripsThroughChromeTrace) {
  const int n = static_cast<int>(TraceEventType::kNumTraceEventTypes);
  Tracer t(telemetry::kTraceAll, 64);
  for (int i = 0; i < n; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    t.record(type, static_cast<Cycle>(100 + i), i % 7 - 1,
             static_cast<std::uint64_t>(i) * 3, static_cast<std::uint64_t>(i) + 1);
  }
  const std::string json = t.chrome_trace_json();
  const std::vector<TraceEvent> parsed = Tracer::parse_chrome_trace(json);
  const std::vector<TraceEvent> original = t.events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_TRUE(parsed[i] == original[i])
        << "event " << i << " ("
        << telemetry::trace_event_name(original[i].type)
        << ") did not survive the chrome-trace round trip";
  }
}

TEST(Trace, EventMetaIsCompleteAndUnique) {
  const int n = static_cast<int>(TraceEventType::kNumTraceEventTypes);
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    const std::string name = telemetry::trace_event_name(type);
    EXPECT_FALSE(name.empty());
    for (const std::string& seen : names) EXPECT_NE(name, seen);
    names.push_back(name);
    // Each event maps into exactly one category bit inside the mask.
    const auto cat = telemetry::trace_event_category(type);
    EXPECT_NE(cat & telemetry::kTraceAll, 0u);
    EXPECT_EQ(cat & (cat - 1), 0u) << name << " category is not one bit";
    EXPECT_NE(telemetry::trace_event_arg0(type), nullptr);
    EXPECT_NE(telemetry::trace_event_arg1(type), nullptr);
  }
}

TEST(Trace, ScopeInstallsAndRestores) {
  auto& tts = telemetry::thread_trace_state();
  ASSERT_EQ(tts.tracer, nullptr);
  ASSERT_EQ(tts.mask, 0u);
  {
    Tracer t(telemetry::kTraceFlit, 16);
    TraceScope scope(&t);
    EXPECT_EQ(telemetry::thread_trace_state().tracer, &t);
    EXPECT_EQ(telemetry::thread_trace_state().mask, telemetry::kTraceFlit);
    {
      TraceScope inner(nullptr);
      EXPECT_EQ(telemetry::thread_trace_state().mask, 0u);
    }
    EXPECT_EQ(telemetry::thread_trace_state().tracer, &t);
  }
  EXPECT_EQ(telemetry::thread_trace_state().tracer, nullptr);
  EXPECT_EQ(telemetry::thread_trace_state().mask, 0u);
}

// --------------------------------------------------------------- manifests

TEST(Manifest, RunManifestEmitsRequiredFields) {
  MetricsRegistry reg;
  reg.counter("x") = 1;
  StructuredSink sink;
  {
    JsonWriter w;
    w.begin_object();
    w.kv("kind", "test_incident");
    w.end_object();
    sink.add(w.take());
  }
  telemetry::RunManifest m;
  m.name = "unit";
  m.scheme = "gFLOV";
  m.config.set("seed", 3ll);
  m.seed = 3;
  m.wall_seconds = 1.25;
  m.trace_path = "t.json";
  m.metrics = &reg;
  m.incidents = &sink;

  const JsonValue v = JsonValue::parse(m.to_json());
  EXPECT_EQ(v.at("schema").str, "flyover-run-manifest-v1");
  EXPECT_EQ(v.at("name").str, "unit");
  EXPECT_EQ(v.at("scheme").str, "gFLOV");
  EXPECT_FALSE(v.at("git_describe").str.empty());
  EXPECT_DOUBLE_EQ(v.at("seed").num, 3.0);
  EXPECT_EQ(v.at("config").at("seed").str, "3");
  EXPECT_DOUBLE_EQ(v.at("wall_seconds").num, 1.25);
  EXPECT_DOUBLE_EQ(v.at("metrics").at("counters").at("x").num, 1.0);
  ASSERT_EQ(v.at("incidents").arr.size(), 1u);
  EXPECT_EQ(v.at("incidents").arr[0].at("kind").str, "test_incident");
}

TEST(Manifest, SweepManifestEmitsPointsAndMergedMetrics) {
  MetricsRegistry p0, p1, merged;
  p0.counter("n") = 1;
  p1.counter("n") = 2;
  merged.merge(p0);
  merged.merge(p1);
  telemetry::SweepManifest m;
  m.name = "fig6";
  m.jobs = 4;
  telemetry::SweepPointEntry e0{"gFLOV", "uniform", 0.02, 0.4, 1, &p0};
  telemetry::SweepPointEntry e1{"RP", "uniform", 0.02, 0.4, 1, &p1};
  m.points = {e0, e1};
  m.merged = &merged;

  const JsonValue v = JsonValue::parse(m.to_json());
  EXPECT_EQ(v.at("schema").str, "flyover-sweep-manifest-v1");
  ASSERT_EQ(v.at("points").arr.size(), 2u);
  EXPECT_EQ(v.at("points").arr[0].at("scheme").str, "gFLOV");
  EXPECT_DOUBLE_EQ(v.at("points").arr[1].at("metrics").at("counters").at("n").num,
                   2.0);
  EXPECT_DOUBLE_EQ(v.at("merged_metrics").at("counters").at("n").num, 3.0);
}

TEST(Manifest, StructuredSinkWritesStandaloneFile) {
  StructuredSink sink;
  JsonWriter w;
  w.begin_object();
  w.kv("kind", "watchdog_stall");
  w.kv("cycle", std::uint64_t{42});
  w.end_object();
  sink.add(w.take());
  ASSERT_EQ(sink.size(), 1u);

  const std::string path = ::testing::TempDir() + "incidents_test.json";
  sink.write(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[512];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());

  const JsonValue v = JsonValue::parse(text);
  EXPECT_EQ(v.at("schema").str, "flyover-incidents-v1");
  ASSERT_EQ(v.at("incidents").arr.size(), 1u);
  EXPECT_DOUBLE_EQ(v.at("incidents").arr[0].at("cycle").num, 42.0);
}

// --------------------------------------------------- experiment integration

SyntheticExperimentConfig small_cfg(Scheme scheme) {
  SyntheticExperimentConfig cfg;
  cfg.noc.width = 4;
  cfg.noc.height = 4;
  cfg.scheme = scheme;
  cfg.inj_rate_flits = 0.02;
  cfg.gated_fraction = 0.4;
  cfg.warmup = 500;
  cfg.measure = 2000;
  cfg.seed = 7;
  return cfg;
}

TEST(ExperimentTelemetry, RunPopulatesMetricsRegistry) {
  SyntheticExperimentConfig cfg = small_cfg(Scheme::kGFlov);
  cfg.telemetry.metrics_window = 500;
  const RunResult r = run_synthetic(cfg);
  ASSERT_NE(r.metrics, nullptr);
  ASSERT_NE(r.incidents, nullptr);
  // Spot-check one metric from each publishing subsystem.
  EXPECT_EQ(r.metrics->counter_value("net.injected_flits"), r.injected_flits);
  EXPECT_EQ(r.metrics->counter_value("latency.packets_measured"),
            r.packets_measured);
  EXPECT_EQ(r.metrics->counter_value("flov.sleeps"), r.protocol_sleeps);
  EXPECT_EQ(r.metrics->counter_value("run.packets_generated"),
            r.packets_generated);
  EXPECT_EQ(r.metrics->counter_value("verify.checks"), r.verifier_checks);
  EXPECT_TRUE(r.metrics->gauges().count("power.total_mw"));
  // The sampled time-series exists and spans the run.
  ASSERT_TRUE(r.metrics->all_series().count("series.in_network_flits"));
  EXPECT_FALSE(
      r.metrics->all_series().at("series.in_network_flits").points().empty());
}

TEST(ExperimentTelemetry, RpRunPublishesFabricMetrics) {
  const RunResult r = run_synthetic(small_cfg(Scheme::kRp));
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_TRUE(r.metrics->has_counter("rp.reconfigurations"));
  EXPECT_TRUE(r.metrics->gauges().count("rp.parked_routers"));
}

TEST(ExperimentTelemetry, MetricsJsonIsRunDeterministic) {
  const SyntheticExperimentConfig cfg = small_cfg(Scheme::kGFlov);
  const RunResult a = run_synthetic(cfg);
  const RunResult b = run_synthetic(cfg);
  JsonWriter wa, wb;
  a.metrics->write_json(wa);
  b.metrics->write_json(wb);
  EXPECT_EQ(wa.str(), wb.str());
}

TEST(ExperimentTelemetry, SweepMergeFoldsAllPoints) {
  std::vector<SyntheticExperimentConfig> points{small_cfg(Scheme::kGFlov),
                                                small_cfg(Scheme::kBaseline)};
  SweepOptions sopts;
  sopts.jobs = 1;
  const auto results = run_sweep(points, sopts);
  const MetricsRegistry merged = merge_sweep_metrics(results);
  EXPECT_EQ(merged.counter_value("run.packets_generated"),
            results[0].packets_generated + results[1].packets_generated);
}

TEST(ExperimentTelemetry, TraceCapturesFlitLifecycle) {
#if !defined(FLYOVER_TRACING) || !FLYOVER_TRACING
  GTEST_SKIP() << "build compiled the trace hook points out "
                  "(FLYOVER_TRACING=OFF)";
#else
  SyntheticExperimentConfig cfg = small_cfg(Scheme::kGFlov);
  cfg.telemetry.trace_mask = telemetry::kTraceAll;
  const RunResult r = run_synthetic(cfg);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_GT(r.trace->size(), 0u);
  bool saw_gen = false, saw_eject = false, saw_power = false;
  for (const TraceEvent& e : r.trace->events()) {
    saw_gen |= e.type == TraceEventType::kPacketGen;
    saw_eject |= e.type == TraceEventType::kPacketEject;
    saw_power |= e.type == TraceEventType::kPowerMode;
  }
  EXPECT_TRUE(saw_gen);
  EXPECT_TRUE(saw_eject);
  EXPECT_TRUE(saw_power);
  // The exported trace must survive a full re-parse (Perfetto loadability
  // proxy) and reproduce the recorded events verbatim.
  const auto parsed = Tracer::parse_chrome_trace(r.trace->chrome_trace_json());
  const auto original = r.trace->events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    ASSERT_TRUE(parsed[i] == original[i]) << "event " << i;
  }
#endif
}

TEST(ExperimentTelemetry, CategoryMaskFiltersEvents) {
#if !defined(FLYOVER_TRACING) || !FLYOVER_TRACING
  GTEST_SKIP() << "build compiled the trace hook points out "
                  "(FLYOVER_TRACING=OFF)";
#else
  SyntheticExperimentConfig cfg = small_cfg(Scheme::kGFlov);
  cfg.telemetry.trace_mask = telemetry::kTracePower;  // power only
  const RunResult r = run_synthetic(cfg);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_GT(r.trace->size(), 0u);
  for (const TraceEvent& e : r.trace->events()) {
    EXPECT_EQ(telemetry::trace_event_category(e.type), telemetry::kTracePower)
        << telemetry::trace_event_name(e.type);
  }
#endif
}

}  // namespace
}  // namespace flov
