// Credit-handover and FLOV-datapath timing tests: the Fig. 3 credit
// machinery — zero/copy at Sleep, relay across sleeping runs, full-reset at
// wakeup — plus fly-over per-hop latency.
#include <gtest/gtest.h>

#include "flov/flov_network.hpp"

namespace flov {
namespace {

NocParams params4() {
  NocParams p;
  p.width = 4;
  p.height = 4;
  p.drain_idle_threshold = 8;
  return p;
}

struct Harness {
  explicit Harness(FlovMode mode = FlovMode::kGeneralized)
      : sys(params4(), mode, EnergyParams{}) {
    sys.network().set_eject_callback(
        [this](const PacketRecord& r) { records.push_back(r); });
  }
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) sys.step(now++);
  }
  void gate(NodeId n) { sys.set_core_gated(n, true, now); }
  void sleep_and_settle(std::initializer_list<NodeId> nodes, int cycles) {
    for (NodeId n : nodes) gate(n);
    run(cycles);
    for (NodeId n : nodes) {
      ASSERT_EQ(sys.hsc(n).state(), PowerState::kSleep) << n;
    }
  }

  /// Enqueues a packet stamped with the current cycle as generation time.
  void send(NodeId s, NodeId d, int size = 4) {
    PacketDescriptor p;
    p.src = s;
    p.dest = d;
    p.size_flits = size;
    p.gen_cycle = now;
    sys.network().enqueue(p);
  }

  FlovNetwork sys;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

TEST(FlovCredits, UpstreamTracksLogicalDownstreamAfterSleep) {
  Harness h;
  h.sleep_and_settle({5}, 200);
  // Router 4's East output credits must equal router 6's (empty) buffers.
  const auto& port = h.sys.network().router(4).output_port(Direction::East);
  for (const auto& ovc : port.vcs) {
    EXPECT_EQ(ovc.credits, params4().buffer_depth);
    EXPECT_FALSE(ovc.allocated);
  }
}

TEST(FlovCredits, CreditsReturnAfterTrafficAcrossSleeper) {
  Harness h;
  h.sleep_and_settle({5}, 200);
  for (int i = 0; i < 8; ++i) h.send(4, 6);
  h.run(500);
  ASSERT_EQ(h.records.size(), 8u);
  // Steady state restored: full credits again at the upstream.
  const auto& port = h.sys.network().router(4).output_port(Direction::East);
  for (const auto& ovc : port.vcs) {
    EXPECT_EQ(ovc.credits, params4().buffer_depth);
  }
}

TEST(FlovCredits, FlyOverHopCostsTwoCyclesVsFourForPipeline) {
  // 4 -> 6 with router 5 powered vs asleep: per-hop 4 cycles becomes
  // 1 latch + 1 link = 2 cycles.
  Harness powered;
  powered.send(4, 6, 1);
  powered.run(60);
  ASSERT_EQ(powered.records.size(), 1u);
  const Cycle base = powered.records[0].total_latency();

  Harness gated;
  gated.sleep_and_settle({5}, 200);
  gated.send(4, 6, 1);
  gated.run(60);
  ASSERT_EQ(gated.records.size(), 1u);
  const Cycle flov = gated.records[0].total_latency();
  EXPECT_EQ(base - flov, 2u);
  EXPECT_EQ(gated.records[0].flov_hops, 1);
  EXPECT_EQ(gated.records[0].router_hops, 2);
}

TEST(FlovCredits, LongSleepingRunLatencyScalesWithLatchCycles) {
  // Row 1 of the 4x4 mesh: routers 4,5,6,7 — gate 5 and 6 (gFLOV run).
  Harness h;
  h.sleep_and_settle({5, 6}, 600);
  h.send(4, 7, 1);
  h.run(80);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].flov_hops, 2);
  // 2 powered routers (4,7): 2*3 cycles; 3 links; 2 latches; +2 NI chans.
  EXPECT_EQ(h.records[0].total_latency(), 6u + 3u + 2u + 2u);
}

TEST(FlovCredits, BackpressureAcrossSleepingRun) {
  // Saturate the path 4 -> 7 across two sleepers; credits must throttle
  // without buffer overflow (router asserts fire otherwise), and all
  // packets arrive.
  Harness h;
  h.sleep_and_settle({5, 6}, 600);
  for (int i = 0; i < 30; ++i) h.send(4, 7);
  h.run(2000);
  EXPECT_EQ(h.records.size(), 30u);
}

TEST(FlovCredits, WakeupRestoresFullCreditsUpstream) {
  Harness h;
  h.sleep_and_settle({5}, 200);
  // Wake it via core reactivation.
  h.sys.set_core_gated(5, false, h.now);
  h.run(200);
  ASSERT_EQ(h.sys.hsc(5).state(), PowerState::kActive);
  const auto& p4 = h.sys.network().router(4).output_port(Direction::East);
  for (const auto& ovc : p4.vcs) EXPECT_EQ(ovc.credits, params4().buffer_depth);
  // And router 5's own credits track router 6.
  const auto& p5 = h.sys.network().router(5).output_port(Direction::East);
  for (const auto& ovc : p5.vcs) EXPECT_EQ(ovc.credits, params4().buffer_depth);
  // Traffic flows normally again.
  h.send(4, 6);
  h.run(100);
  EXPECT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].flov_hops, 0);
}

TEST(FlovCredits, MidStreamGatingPreservesEveryFlit) {
  // Continuous traffic across router 5 while it is gated and later woken:
  // nothing may be lost or duplicated.
  Harness h;
  int sent = 0;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 5; ++i) {
      h.send(4, 6);
      ++sent;
    }
    if (burst == 0) h.gate(5);
    if (burst == 2) h.sys.set_core_gated(5, false, h.now);
    h.run(400);
  }
  h.run(1000);
  EXPECT_EQ(static_cast<int>(h.records.size()), sent);
  EXPECT_EQ(h.sys.network().total_injected_flits(),
            h.sys.network().total_ejected_flits());
}

TEST(FlovCredits, CreditRelayEventsAreCounted) {
  Harness h;
  h.sleep_and_settle({5}, 200);
  const auto before = h.sys.power().event_count(EnergyEvent::kCreditRelay);
  h.send(4, 6);
  h.run(100);
  ASSERT_EQ(h.records.size(), 1u);
  // 4 flits popped at router 6 -> 4 credits relayed through router 5.
  EXPECT_EQ(h.sys.power().event_count(EnergyEvent::kCreditRelay),
            before + 4);
}

TEST(FlovCredits, FlovLatchEventsAreCounted) {
  Harness h;
  h.sleep_and_settle({5}, 200);
  const auto before = h.sys.power().event_count(EnergyEvent::kFlovLatch);
  h.send(4, 6);
  h.run(100);
  EXPECT_EQ(h.sys.power().event_count(EnergyEvent::kFlovLatch), before + 4);
}

}  // namespace
}  // namespace flov
