// CMP substrate tests: L1 cache behaviour, MESI directory protocol
// transactions, benchmark profiles, and end-to-end full-system runs.
#include <gtest/gtest.h>

#include <deque>

#include "cmp/cmp_system.hpp"
#include "cmp/directory.hpp"
#include "cmp/l1_cache.hpp"

namespace flov {
namespace {

// ------------------------------------------------------------ L1 in vitro

struct L1Fixture {
  L1Fixture()
      : l1(1, /*capacity=*/4, /*seed=*/7,
           [this](const CoherenceMsg& m) { sent.push_back(m); },
           [](Addr) { return NodeId{0}; }) {}

  CoherenceMsg data_for(Addr a, Grant g) {
    CoherenceMsg d;
    d.type = MsgType::kData;
    d.addr = a;
    d.src = 0;
    d.dst = 1;
    d.grant = g;
    return d;
  }

  std::vector<CoherenceMsg> sent;
  L1Cache l1;
};

TEST(L1Cache, MissSendsGetSAndBlocksUntilData) {
  L1Fixture f;
  EXPECT_FALSE(f.l1.access(100, false));
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kGetS);
  EXPECT_EQ(f.sent[0].dst, 0);
  EXPECT_TRUE(f.l1.miss_outstanding());
  f.l1.on_message(f.data_for(100, Grant::kS));
  EXPECT_FALSE(f.l1.miss_outstanding());
  EXPECT_TRUE(f.l1.access(100, false));  // now a hit
}

TEST(L1Cache, StoreMissSendsGetM) {
  L1Fixture f;
  EXPECT_FALSE(f.l1.access(100, true));
  EXPECT_EQ(f.sent[0].type, MsgType::kGetM);
  f.l1.on_message(f.data_for(100, Grant::kM));
  EXPECT_TRUE(f.l1.access(100, true));   // M hit
  EXPECT_TRUE(f.l1.access(100, false));  // read hit in M
}

TEST(L1Cache, UpgradeFromSToMIsAMiss) {
  L1Fixture f;
  f.l1.access(100, false);
  f.l1.on_message(f.data_for(100, Grant::kS));  // now S
  f.sent.clear();
  EXPECT_FALSE(f.l1.access(100, true));  // store on S -> GetM
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kGetM);
}

TEST(L1Cache, CapacityEvictionWritesBackDirty) {
  L1Fixture f;  // capacity 4
  for (Addr a = 0; a < 4; ++a) {
    f.l1.access(a, true);
    f.l1.on_message(f.data_for(a, Grant::kM));
  }
  f.sent.clear();
  f.l1.access(10, false);
  f.l1.on_message(f.data_for(10, Grant::kS));  // triggers an eviction
  bool saw_putm = false;
  for (const auto& m : f.sent) saw_putm |= (m.type == MsgType::kPutM);
  EXPECT_TRUE(saw_putm);
  EXPECT_LE(f.l1.cached_blocks(), 4u);
}

TEST(L1Cache, InvalidationDropsAndAcks) {
  L1Fixture f;
  f.l1.access(100, false);
  f.l1.on_message(f.data_for(100, Grant::kS));
  f.sent.clear();
  CoherenceMsg inv;
  inv.type = MsgType::kInv;
  inv.addr = 100;
  inv.src = 0;
  inv.dst = 1;
  f.l1.on_message(inv);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kInvAck);
  EXPECT_FALSE(f.l1.access(100, false));  // miss again
}

TEST(L1Cache, FwdGetSSuppliesBothRequesterAndDir) {
  L1Fixture f;
  f.l1.access(100, true);
  f.l1.on_message(f.data_for(100, Grant::kM));  // owner in M
  f.sent.clear();
  CoherenceMsg fwd;
  fwd.type = MsgType::kFwdGetS;
  fwd.addr = 100;
  fwd.src = 0;       // directory
  fwd.dst = 1;
  fwd.requester = 5;
  f.l1.on_message(fwd);
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_EQ(f.sent[0].type, MsgType::kData);
  EXPECT_EQ(f.sent[0].dst, 5);
  EXPECT_EQ(f.sent[1].type, MsgType::kDataToDir);
  EXPECT_EQ(f.sent[1].dst, 0);
}

TEST(L1Cache, FlushEmitsAllBlocksThenCompletes) {
  L1Fixture f;
  for (Addr a = 0; a < 3; ++a) {
    f.l1.access(a, a == 0);
    f.l1.on_message(f.data_for(a, a == 0 ? Grant::kM : Grant::kS));
  }
  f.sent.clear();
  f.l1.begin_flush();
  for (int i = 0; i < 10; ++i) f.l1.flush_step();
  // One PutM (block 0 dirty) + two PutS.
  int putm = 0, puts = 0;
  for (const auto& m : f.sent) {
    putm += m.type == MsgType::kPutM;
    puts += m.type == MsgType::kPutS;
  }
  EXPECT_EQ(putm, 1);
  EXPECT_EQ(puts, 2);
  EXPECT_FALSE(f.l1.flush_done());  // PutM awaits its ack
  CoherenceMsg ack;
  ack.type = MsgType::kPutAck;
  ack.addr = 0;
  f.l1.on_message(ack);
  EXPECT_TRUE(f.l1.flush_done());
  EXPECT_EQ(f.l1.cached_blocks(), 0u);
}

// ----------------------------------------------------- directory in vitro

struct DirFixture {
  DirFixture()
      : bank(0, DirectoryConfig{16, 2, 10},
             [this](const CoherenceMsg& m) { sent.push_back(m); }) {}

  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) bank.step(now++);
  }

  CoherenceMsg req(MsgType t, Addr a, NodeId from) {
    CoherenceMsg m;
    m.type = t;
    m.addr = a;
    m.src = from;
    m.dst = 0;
    m.requester = from;
    return m;
  }

  std::vector<CoherenceMsg> sent;
  DirectoryBank bank;
  Cycle now = 0;
};

TEST(Directory, GetSReturnsExclusiveDataAfterMemoryLatency) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(1);
  EXPECT_TRUE(f.sent.empty());  // DRAM latency pending
  f.run(15);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kData);
  EXPECT_EQ(f.sent[0].dst, 3);
  EXPECT_EQ(f.sent[0].grant, Grant::kE);  // MESI: sole reader gets E
  EXPECT_EQ(f.bank.l2_misses(), 1u);
}

TEST(Directory, SecondGetSAfterPutEHitsL2Faster) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(20);  // 3 holds E
  f.bank.enqueue(f.req(MsgType::kPutE, 100, 3));  // clean eviction
  f.run(3);
  f.sent.clear();
  const Cycle before = f.now;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));
  while (f.sent.empty()) f.run(1);
  EXPECT_LE(f.now - before, 5u);  // L2 hit latency only
  EXPECT_EQ(f.bank.l2_misses(), 1u);
  EXPECT_EQ(f.sent[0].grant, Grant::kE);  // block uncached again -> E
}

TEST(Directory, GetMOverSharersInvalidatesAndCollectsAcks) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(20);  // 3 holds E
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));  // Fwd to owner 3
  f.run(3);
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));  // now S{3,4}
  f.run(3);
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 5));
  f.run(5);
  // Invalidations to 3 and 4 went out; data held until acks return.
  int invs = 0;
  for (const auto& m : f.sent) invs += m.type == MsgType::kInv;
  ASSERT_EQ(invs, 2);
  bool data_sent = false;
  for (const auto& m : f.sent) data_sent |= m.type == MsgType::kData;
  EXPECT_FALSE(data_sent);
  f.bank.enqueue(f.req(MsgType::kInvAck, 100, 3));
  f.bank.enqueue(f.req(MsgType::kInvAck, 100, 4));
  f.run(5);
  data_sent = false;
  for (const auto& m : f.sent) {
    if (m.type == MsgType::kData) {
      data_sent = true;
      EXPECT_EQ(m.grant, Grant::kM);
      EXPECT_EQ(m.dst, 5);
    }
  }
  EXPECT_TRUE(data_sent);
}

TEST(Directory, GetSOnModifiedForwardsToOwner) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 3));
  f.run(20);  // 3 owns in M

  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));
  f.run(3);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kFwdGetS);
  EXPECT_EQ(f.sent[0].dst, 3);
  EXPECT_EQ(f.sent[0].requester, 4);
  // Owner responds to dir; transaction completes without dir data.
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));
  f.run(3);
  EXPECT_TRUE(f.sent.empty());
}

TEST(Directory, RequestsQueueBehindBusyBlock) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));  // E grant
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));  // queues; then Fwd to 3
  f.run(30);
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));
  f.run(5);
  int datas = 0, fwds = 0;
  for (const auto& m : f.sent) {
    datas += m.type == MsgType::kData;
    fwds += m.type == MsgType::kFwdGetS;
  }
  EXPECT_EQ(datas, 1);
  EXPECT_EQ(fwds, 1);
  EXPECT_EQ(f.bank.transactions(), 2u);
}

TEST(Directory, PutMFromOwnerRetiresOwnership) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 3));
  f.run(20);
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kPutM, 100, 3));
  f.run(3);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kPutAck);
  // Next GetS is served from L2 (no forward).
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));
  f.run(10);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kData);
}

TEST(Directory, StalePutMIsAckedAndIgnored) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 3));
  f.run(20);
  f.bank.enqueue(f.req(MsgType::kPutM, 100, 9));  // not the owner
  f.run(3);
  bool acked = false;
  for (const auto& m : f.sent) {
    if (m.type == MsgType::kPutAck && m.dst == 9) acked = true;
  }
  EXPECT_TRUE(acked);
  // 3 still owns: a GetS must forward.
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));
  f.run(3);
  ASSERT_FALSE(f.sent.empty());
  EXPECT_EQ(f.sent[0].type, MsgType::kFwdGetS);
}

TEST(Directory, QueuedRequestsDrainAfterInlineMessages) {
  // Regression: requests queued behind a busy transaction must still be
  // served when the queue head is a PutS/PutM handled without starting a
  // new transaction (the pump must keep draining).
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 3));  // busy (DRAM fetch)
  f.bank.enqueue(f.req(MsgType::kPutM, 100, 9));  // queues; stale, inline
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));  // queues behind the PutM
  f.run(40);
  bool acked9 = false, fwd3 = false;
  for (const auto& m : f.sent) {
    acked9 |= m.type == MsgType::kPutAck && m.dst == 9;
    fwd3 |= m.type == MsgType::kFwdGetS && m.dst == 3;
  }
  EXPECT_TRUE(acked9);  // the inline PutM was pumped...
  EXPECT_TRUE(fwd3);    // ...and the GetS behind it was served too
}

TEST(Directory, NewRequestsDoNotJumpTheWaitingQueue) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));  // -> E grant to 3
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 4));  // waits behind the GetS
  f.run(40);  // GetS completes; GetM starts: FwdGetM to owner 3
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));
  f.run(10);  // GetM completes, 4 owns M
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 5));  // forwarded to owner 4
  f.run(10);
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 4));
  f.run(10);
  int datas = 0, fwd_s = 0, fwd_m = 0;
  for (const auto& m : f.sent) {
    datas += m.type == MsgType::kData;
    fwd_s += m.type == MsgType::kFwdGetS;
    fwd_m += m.type == MsgType::kFwdGetM;
  }
  EXPECT_EQ(datas, 2);  // E grant to 3, M grant to 4 (5 served by owner 4)
  EXPECT_EQ(fwd_m, 1);
  EXPECT_EQ(fwd_s, 1);
  EXPECT_EQ(f.bank.transactions(), 3u);
  EXPECT_TRUE(f.bank.idle());
}

TEST(Directory, GatedOracleSkipsSleepingSharers) {
  DirFixture f;
  f.bank.set_gated_oracle([](NodeId n) { return n == 4; });
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(20);  // 3 holds E
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));  // Fwd dance -> S{3,4}
  f.run(3);
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));
  f.run(3);
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 5));
  f.run(5);
  int invs = 0;
  for (const auto& m : f.sent) {
    if (m.type == MsgType::kInv) {
      ++invs;
      EXPECT_NE(m.dst, 4);  // the gated core is never contacted
    }
  }
  EXPECT_EQ(invs, 1);
}

// ----------------------------------------------------------- profiles

TEST(Profiles, SuiteHasNineDistinctBenchmarks) {
  const auto suite = BenchmarkProfile::parsec_suite();
  ASSERT_EQ(suite.size(), 9u);
  std::set<std::string> names;
  for (const auto& p : suite) {
    names.insert(p.name);
    EXPECT_GT(p.mem_access_rate, 0.0);
    EXPECT_LT(p.mem_access_rate, 0.5);
    EXPECT_GT(p.active_fraction, 0.0);
    EXPECT_LE(p.active_fraction, 1.0);
    EXPECT_GE(p.imbalance, 0.0);
    EXPECT_LT(p.imbalance, 1.0);
  }
  EXPECT_EQ(names.size(), 9u);
  EXPECT_NO_THROW(BenchmarkProfile::by_name("canneal"));
  EXPECT_THROW(BenchmarkProfile::by_name("doom"), std::logic_error);
}

// ------------------------------------------------------------- end-to-end

CmpConfig small_cmp(Scheme s) {
  CmpConfig c;
  c.scheme = s;
  c.noc.width = 4;
  c.noc.height = 4;
  c.profile = BenchmarkProfile::by_name("swaptions");
  c.profile.base_instructions = 4000;
  c.seed = 1;
  c.max_cycles = 400000;
  return c;
}

class CmpSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(CmpSchemes, RunsToCompletionWithCoherentTraffic) {
  const CmpResult r = run_cmp(small_cmp(GetParam()));
  EXPECT_GT(r.runtime, 0u);
  EXPECT_GT(r.packets, 0u);
  EXPECT_GT(r.dir_transactions, 0u);
  EXPECT_GT(r.l1_hits, 0u);
  EXPECT_GT(r.final_gated_cores, 0);
  EXPECT_GT(r.power.total_energy_pj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, CmpSchemes,
                         ::testing::Values(Scheme::kBaseline, Scheme::kRp,
                                           Scheme::kRFlov, Scheme::kGFlov),
                         [](const ::testing::TestParamInfo<Scheme>& i) {
                           return std::string(to_string(i.param));
                         });

TEST(CmpSystem, WorkloadIsDeterministicPerSeed) {
  const CmpResult a = run_cmp(small_cmp(Scheme::kBaseline));
  const CmpResult b = run_cmp(small_cmp(Scheme::kBaseline));
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.l1_misses, b.l1_misses);
}

TEST(CmpSystem, GFlovSavesStaticEnergyAtSmallRuntimeCost) {
  const CmpResult base = run_cmp(small_cmp(Scheme::kBaseline));
  const CmpResult gf = run_cmp(small_cmp(Scheme::kGFlov));
  EXPECT_LT(gf.power.static_energy_pj, base.power.static_energy_pj);
  EXPECT_LT(gf.runtime, base.runtime * 1.15);
}

}  // namespace
}  // namespace flov
