// Deadlock-recovery stress tests: adversarial configurations with small
// buffers and heavy gating where the adaptive regular network can block,
// so packets must survive via the escape sub-network (Duato recovery).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "flov/flov_network.hpp"
#include "sim/experiment.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {
namespace {

TEST(EscapeRecovery, TimeoutDivertsBlockedPackets) {
  // Gate a wall so quadrant packets from the west side must detour; with a
  // short timeout, some packets take the escape network and still arrive.
  NocParams p;
  p.width = 6;
  p.height = 6;
  p.deadlock_timeout = 16;  // aggressive diversion
  p.drain_idle_threshold = 8;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  std::vector<PacketRecord> recs;
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { recs.push_back(r); });
  const MeshGeometry g(6, 6);
  Cycle now = 0;
  auto run = [&](int k) {
    for (int i = 0; i < k; ++i) sys.step(now++);
  };
  // Gate columns 1..3 of rows 0..4 (a large block).
  for (int x = 1; x <= 3; ++x) {
    for (int y = 0; y <= 4; ++y) sys.set_core_gated(g.id(x, y), true, 0);
  }
  run(3000);
  // Traffic from column 0 to quadrant destinations behind the block.
  int sent = 0;
  for (int y = 1; y < 5; ++y) {
    for (int i = 0; i < 6; ++i) {
      PacketDescriptor d;
      d.src = g.id(0, y);
      d.dest = g.id(4, (y + 2) % 6);
      d.size_flits = 4;
      sys.network().enqueue(d);
      ++sent;
    }
  }
  run(8000);
  EXPECT_EQ(static_cast<int>(recs.size()), sent);
}

TEST(EscapeRecovery, TinyBuffersHighLoadAllSchemesSurvive) {
  SyntheticExperimentConfig c;
  c.noc.width = 6;
  c.noc.height = 6;
  c.noc.buffer_depth = 2;       // minimal slack
  c.noc.deadlock_timeout = 32;
  c.warmup = 1000;
  c.measure = 8000;
  c.inj_rate_flits = 0.10;      // heavy
  c.gated_fraction = 0.5;
  c.watchdog = 20000;
  for (Scheme s : kAllSchemes) {
    c.scheme = s;
    const RunResult r = run_synthetic(c);  // watchdog aborts on deadlock
    EXPECT_GT(r.packets_measured, 0u) << to_string(s);
  }
}

TEST(EscapeRecovery, EscapePacketsStayInEscapeAndArrive) {
  // Force escapes via a dead-end configuration and verify the records mark
  // them; escape-marked packets must still reach their destinations.
  NocParams p;
  p.width = 4;
  p.height = 4;
  p.deadlock_timeout = 8;
  p.drain_idle_threshold = 8;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  std::vector<PacketRecord> recs;
  sys.network().set_eject_callback(
      [&](const PacketRecord& r) { recs.push_back(r); });
  Cycle now = 0;
  auto run = [&](int k) {
    for (int i = 0; i < k; ++i) sys.step(now++);
  };
  // Sleep 1 and 4 around router 5; packets arriving at 5 from the East
  // with NW destinations dead-end there.
  sys.set_core_gated(1, true, 0);
  sys.set_core_gated(4, true, 0);
  run(1500);
  ASSERT_EQ(sys.hsc(1).state(), PowerState::kSleep);
  ASSERT_EQ(sys.hsc(4).state(), PowerState::kSleep);
  PacketDescriptor d;
  d.src = 6;
  d.dest = 0;  // NW of router 5
  d.size_flits = 4;
  sys.network().enqueue(d);
  run(2000);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].dest, 0);
}

TEST(EscapeRecovery, EscapeUnusedOnUncongestedBaseline) {
  SyntheticExperimentConfig c;
  c.warmup = 1000;
  c.measure = 5000;
  c.scheme = Scheme::kBaseline;
  c.inj_rate_flits = 0.02;
  const RunResult r = run_synthetic(c);
  EXPECT_EQ(r.escape_packets, 0u);
}

class HighGatingStress : public ::testing::TestWithParam<int> {};

TEST_P(HighGatingStress, GFlov80PercentGatedManySeeds) {
  SyntheticExperimentConfig c;
  c.scheme = Scheme::kGFlov;
  c.gated_fraction = 0.8;
  c.inj_rate_flits = 0.05;
  c.warmup = 3000;
  c.measure = 8000;
  c.seed = GetParam();
  c.watchdog = 25000;
  const RunResult r = run_synthetic(c);
  EXPECT_GT(r.packets_measured, 0u);
  // High gating must actually gate routers.
  EXPECT_GT(r.gated_routers_end, 30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HighGatingStress,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace flov
