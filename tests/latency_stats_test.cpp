// Latency breakdown arithmetic (Fig. 8 decomposition) and NI-level
// record handling.
#include <gtest/gtest.h>

#include "sim/latency_stats.hpp"

namespace flov {
namespace {

PacketRecord rec(Cycle gen, Cycle eject, int routers, int links, int flov,
                 int size) {
  PacketRecord r;
  r.gen_cycle = gen;
  r.inject_cycle = gen;
  r.eject_cycle = eject;
  r.router_hops = routers;
  r.link_hops = links;
  r.flov_hops = flov;
  r.size_flits = size;
  return r;
}

TEST(LatencyStats, MinimalPacketHasZeroContention) {
  LatencyStats s(3);
  // 1 hop on adjacent routers: 2 router pipelines (6) + 1 link + 2 NI
  // channels + 0 serialization = 9 cycles, the timing the pipeline test
  // measures.
  s.record(rec(0, 9, 2, 1, 0, 1));
  EXPECT_DOUBLE_EQ(s.avg_latency(), 9.0);
  const auto b = s.avg_breakdown();
  EXPECT_DOUBLE_EQ(b.router, 6.0);
  EXPECT_DOUBLE_EQ(b.link, 3.0);
  EXPECT_DOUBLE_EQ(b.serialization, 0.0);
  EXPECT_DOUBLE_EQ(b.flov, 0.0);
  EXPECT_DOUBLE_EQ(b.contention, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), 9.0);
}

TEST(LatencyStats, ContentionIsTheResidual) {
  LatencyStats s(3);
  s.record(rec(0, 29, 2, 1, 0, 1));  // 20 cycles of queuing/blocking
  EXPECT_DOUBLE_EQ(s.avg_breakdown().contention, 20.0);
}

TEST(LatencyStats, FlovHopsCountedSeparately) {
  LatencyStats s(3);
  // Two powered routers + 2 fly-over hops between them: router 6, links
  // 3 mesh links + 2 NI = 5, flov 2.
  s.record(rec(0, 13, 2, 3, 2, 1));
  const auto b = s.avg_breakdown();
  EXPECT_DOUBLE_EQ(b.flov, 2.0);
  EXPECT_DOUBLE_EQ(b.router, 6.0);
  EXPECT_DOUBLE_EQ(b.contention, 0.0);
}

TEST(LatencyStats, SerializationFromPacketSize) {
  LatencyStats s(3);
  s.record(rec(0, 12, 2, 1, 0, 4));
  EXPECT_DOUBLE_EQ(s.avg_breakdown().serialization, 3.0);
}

TEST(LatencyStats, MeasureFromFiltersWarmup) {
  LatencyStats s(3);
  s.set_measure_from(1000);
  s.record(rec(500, 600, 2, 1, 0, 1));   // warm-up packet: ignored
  s.record(rec(1500, 1600, 2, 1, 0, 1)); // measured
  EXPECT_EQ(s.packets(), 1u);
}

TEST(LatencyStats, EscapeCounted) {
  LatencyStats s(3);
  auto r = rec(0, 9, 2, 1, 0, 1);
  r.used_escape = true;
  s.record(r);
  EXPECT_EQ(s.escape_packets(), 1u);
}

TEST(LatencyStats, TimelineBucketsByGeneration) {
  LatencyStats s(3, /*timeline_window=*/100);
  s.record(rec(10, 30, 2, 1, 0, 1));
  s.record(rec(250, 300, 2, 1, 0, 1));
  ASSERT_NE(s.timeline(), nullptr);
  const auto pts = s.timeline()->points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].window_start, 0u);
  EXPECT_EQ(pts[1].window_start, 200u);
}

TEST(LatencyStats, BreakdownComponentsSumToAverage) {
  LatencyStats s(3);
  s.record(rec(0, 50, 3, 2, 1, 4));
  s.record(rec(10, 40, 2, 1, 0, 4));
  const auto b = s.avg_breakdown();
  EXPECT_NEAR(b.total(), s.avg_latency(), 1e-9);
}

TEST(LatencyStats, DefaultHistogramCapIs4096) {
  LatencyStats s(3);
  s.record(rec(0, 5000, 2, 1, 0, 1));  // latency beyond the default cap
  s.record(rec(0, 100, 2, 1, 0, 1));
  EXPECT_EQ(s.hist_overflow(), 1u);
  // avg_latency uses the exact accumulator and is NOT clamped...
  EXPECT_DOUBLE_EQ(s.avg_latency(), 2550.0);
  // ...but percentiles saturate at the cap instead of reporting 5000.
  EXPECT_LE(s.latency_percentile(99), 4096.0);
}

TEST(LatencyStats, ConfigurableHistogramCap) {
  LatencyStats small(3, 0, /*hist_max=*/64);
  LatencyStats large(3, 0, /*hist_max=*/16384);
  for (Cycle lat : {40, 100, 5000}) {
    small.record(rec(0, lat, 2, 1, 0, 1));
    large.record(rec(0, lat, 2, 1, 0, 1));
  }
  EXPECT_EQ(small.hist_overflow(), 2u);  // 100 and 5000 exceed 64
  EXPECT_EQ(large.hist_overflow(), 0u);  // 16384 holds them all
  EXPECT_LE(small.latency_percentile(99), 64.0);
  EXPECT_GT(large.latency_percentile(99), 100.0);
}

}  // namespace
}  // namespace flov
