// Coherence race-condition tests: the specific interleavings the blocking
// MSI directory must resolve (writeback racing a forward, stale sharer
// invalidations, flush racing invalidations), plus message-class plumbing.
#include <gtest/gtest.h>

#include "cmp/directory.hpp"
#include "cmp/l1_cache.hpp"
#include "cmp/message.hpp"

namespace flov {
namespace {

TEST(MessageClasses, VnetAssignmentSeparatesProtocolClasses) {
  // Requests on vnet 0, forwards on vnet 1, responses on vnet 2 — the
  // ordering that makes the protocol deadlock-free over the NoC.
  EXPECT_EQ(vnet_of(MsgType::kGetS), 0);
  EXPECT_EQ(vnet_of(MsgType::kGetM), 0);
  EXPECT_EQ(vnet_of(MsgType::kPutM), 0);
  EXPECT_EQ(vnet_of(MsgType::kPutS), 0);
  EXPECT_EQ(vnet_of(MsgType::kFwdGetS), 1);
  EXPECT_EQ(vnet_of(MsgType::kFwdGetM), 1);
  EXPECT_EQ(vnet_of(MsgType::kInv), 1);
  EXPECT_EQ(vnet_of(MsgType::kData), 2);
  EXPECT_EQ(vnet_of(MsgType::kDataToDir), 2);
  EXPECT_EQ(vnet_of(MsgType::kInvAck), 2);
  EXPECT_EQ(vnet_of(MsgType::kPutAck), 2);
}

TEST(MessageClasses, DataMessagesCarryFiveFlits) {
  EXPECT_EQ(flits_of(MsgType::kData), 5);      // 64B / 16B + header
  EXPECT_EQ(flits_of(MsgType::kPutM), 5);
  EXPECT_EQ(flits_of(MsgType::kDataToDir), 5);
  EXPECT_EQ(flits_of(MsgType::kGetS), 1);
  EXPECT_EQ(flits_of(MsgType::kInv), 1);
}

struct L1Fixture {
  L1Fixture()
      : l1(1, 4, 7, [this](const CoherenceMsg& m) { sent.push_back(m); },
           [](Addr) { return NodeId{0}; }) {}
  void grant(Addr a, Grant g) {
    CoherenceMsg d;
    d.type = MsgType::kData;
    d.addr = a;
    d.grant = g;
    l1.on_message(d);
  }
  std::vector<CoherenceMsg> sent;
  L1Cache l1;
};

TEST(L1Races, FwdGetSDuringWritebackServedFromPendingData) {
  // Owner evicts (PutM in flight); a FwdGetS for the same block arrives
  // before the PutAck: the L1 must still supply the requester and the dir.
  L1Fixture f;
  f.l1.access(100, true);
  f.grant(100, Grant::kM);  // own block 100 in M
  // Fill to capacity and trigger eviction of something; force block 100
  // out deterministically by flushing instead.
  f.l1.begin_flush();
  f.l1.flush_step();  // emits PutM(100)
  ASSERT_FALSE(f.l1.flush_done());  // WB pending
  f.sent.clear();

  CoherenceMsg fwd;
  fwd.type = MsgType::kFwdGetS;
  fwd.addr = 100;
  fwd.src = 0;
  fwd.dst = 1;
  fwd.requester = 9;
  f.l1.on_message(fwd);
  ASSERT_EQ(f.sent.size(), 2u);
  EXPECT_EQ(f.sent[0].type, MsgType::kData);
  EXPECT_EQ(f.sent[0].dst, 9);
  EXPECT_EQ(f.sent[1].type, MsgType::kDataToDir);

  // The stale PutM is eventually acked; the flush completes.
  CoherenceMsg ack;
  ack.type = MsgType::kPutAck;
  ack.addr = 100;
  f.l1.on_message(ack);
  EXPECT_TRUE(f.l1.flush_done());
}

TEST(L1Races, InvForUncachedBlockStillAcks) {
  // PutS raced with an Inv: the block is gone, but the directory is
  // counting acks, so the L1 must ack anyway.
  L1Fixture f;
  CoherenceMsg inv;
  inv.type = MsgType::kInv;
  inv.addr = 555;
  inv.src = 0;
  f.l1.on_message(inv);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kInvAck);
}

TEST(L1Races, InvDuringFlushRemovesFromFlushQueue) {
  L1Fixture f;
  f.l1.access(100, false);
  f.grant(100, Grant::kS);  // S
  f.l1.begin_flush();
  // Inv arrives before flush_step reaches the block.
  CoherenceMsg inv;
  inv.type = MsgType::kInv;
  inv.addr = 100;
  inv.src = 0;
  f.l1.on_message(inv);
  f.sent.clear();
  for (int i = 0; i < 5; ++i) f.l1.flush_step();
  // No duplicate PutS for the already-invalidated block.
  EXPECT_TRUE(f.sent.empty());
  EXPECT_TRUE(f.l1.flush_done());
}

struct DirFixture {
  DirFixture()
      : bank(0, DirectoryConfig{16, 2, 10},
             [this](const CoherenceMsg& m) { sent.push_back(m); }) {}
  void run(int cycles) {
    for (int i = 0; i < cycles; ++i) bank.step(now++);
  }
  CoherenceMsg req(MsgType t, Addr a, NodeId from) {
    CoherenceMsg m;
    m.type = t;
    m.addr = a;
    m.src = from;
    m.dst = 0;
    m.requester = from;
    return m;
  }
  std::vector<CoherenceMsg> sent;
  DirectoryBank bank;
  Cycle now = 0;
};

TEST(DirRaces, PutMRacingFwdResolvesThroughDataToDir) {
  // 3 owns block. 4's GetS is processed first (Fwd to 3); 3's concurrent
  // PutM arrives while the transaction is live, queues, and is finally
  // treated as stale (acked, ignored).
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 3));
  f.run(20);
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 4));   // fwd to 3
  f.bank.enqueue(f.req(MsgType::kPutM, 100, 3));   // queued behind
  f.run(3);
  ASSERT_EQ(f.sent.size(), 1u);
  EXPECT_EQ(f.sent[0].type, MsgType::kFwdGetS);
  f.bank.enqueue(f.req(MsgType::kDataToDir, 100, 3));
  f.run(5);
  // Transaction completed; the queued PutM got a PutAck and changed
  // nothing (3 is a mere sharer now, not the owner).
  bool acked = false;
  for (const auto& m : f.sent) acked |= m.type == MsgType::kPutAck;
  EXPECT_TRUE(acked);
  // A new GetM over the sharers {3,4} invalidates both.
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 7));
  f.run(5);
  int invs = 0;
  for (const auto& m : f.sent) invs += m.type == MsgType::kInv;
  EXPECT_EQ(invs, 2);
}

TEST(DirRaces, PutSFromNonSharerIsHarmless) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(20);  // 3 holds E (MESI)
  f.bank.enqueue(f.req(MsgType::kPutS, 100, 9));  // 9 never shared it
  f.run(3);
  // 3 still owns the block: GetM from 5 must forward-invalidate it.
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 5));
  f.run(3);
  int fwds = 0;
  for (const auto& m : f.sent) {
    if (m.type == MsgType::kFwdGetM) {
      ++fwds;
      EXPECT_EQ(m.dst, 3);
    }
  }
  EXPECT_EQ(fwds, 1);
}

TEST(DirRaces, PutERetiresExclusiveOwnership) {
  DirFixture f;
  f.bank.enqueue(f.req(MsgType::kGetS, 100, 3));
  f.run(20);  // 3 holds E
  f.bank.enqueue(f.req(MsgType::kPutE, 100, 3));
  f.run(3);
  // Next GetM needs neither invalidations nor forwards.
  f.sent.clear();
  f.bank.enqueue(f.req(MsgType::kGetM, 100, 5));
  f.run(20);
  for (const auto& m : f.sent) {
    EXPECT_NE(m.type, MsgType::kInv);
    EXPECT_NE(m.type, MsgType::kFwdGetM);
  }
}

}  // namespace
}  // namespace flov
