// FLOV handshake-protocol tests: power-state FSM transitions, rFLOV
// adjacency restriction, gFLOV consecutive gating, arbitration, wakeup
// triggers, credit handover, and PSR consistency.
#include <gtest/gtest.h>

#include "flov/flov_network.hpp"
#include "noc/noc_params.hpp"

namespace flov {
namespace {

NocParams small_params() {
  NocParams p;
  p.width = 4;
  p.height = 4;
  p.drain_idle_threshold = 8;
  return p;
}

struct Harness {
  explicit Harness(FlovMode mode, NocParams p = small_params())
      : sys(p, mode, EnergyParams{}) {
    sys.network().set_eject_callback(
        [this](const PacketRecord& r) { records.push_back(r); });
  }

  void run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) sys.step(now++);
  }

  PowerState state(NodeId n) const { return sys.hsc(n).state(); }

  FlovNetwork sys;
  Cycle now = 0;
  std::vector<PacketRecord> records;
};

PacketDescriptor pkt(NodeId s, NodeId d, int size = 4) {
  PacketDescriptor p;
  p.src = s;
  p.dest = d;
  p.size_flits = size;
  return p;
}

TEST(FlovFsm, IdleGatedRouterDrainsThenSleeps) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  EXPECT_EQ(h.state(5), PowerState::kSleep);
  EXPECT_EQ(h.sys.network().router(5).mode(), RouterMode::kBypass);
  EXPECT_EQ(h.sys.hsc(5).sleep_entries(), 1u);
}

TEST(FlovFsm, UngatedCoreStaysActive) {
  Harness h(FlovMode::kGeneralized);
  h.run(100);
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(h.state(n), PowerState::kActive) << n;
  }
}

TEST(FlovFsm, AonColumnNeverGates) {
  Harness h(FlovMode::kGeneralized);
  for (NodeId n : {3, 7, 11, 15}) h.sys.set_core_gated(n, true, 0);
  h.run(200);
  for (NodeId n : {3, 7, 11, 15}) {
    EXPECT_EQ(h.state(n), PowerState::kActive) << n;
  }
}

TEST(FlovFsm, CornerCanGateAndIsolates) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(0, true, 0);
  h.run(100);
  EXPECT_EQ(h.state(0), PowerState::kSleep);
}

TEST(FlovFsm, CoreWakeRestoresActive) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  ASSERT_EQ(h.state(5), PowerState::kSleep);
  h.sys.set_core_gated(5, false, h.now);
  h.run(100);
  EXPECT_EQ(h.state(5), PowerState::kActive);
  EXPECT_EQ(h.sys.network().router(5).mode(), RouterMode::kPipeline);
  EXPECT_EQ(h.sys.hsc(5).wake_completions(), 1u);
}

TEST(FlovFsm, WakeupTakesAtLeastWakeupLatency) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  const Cycle wake_start = h.now;
  h.sys.set_core_gated(5, false, h.now);
  Cycle active_at = 0;
  for (int i = 0; i < 200 && active_at == 0; ++i) {
    h.run(1);
    if (h.state(5) == PowerState::kActive) active_at = h.now;
  }
  ASSERT_GT(active_at, 0u);
  EXPECT_GE(active_at - wake_start, small_params().wakeup_latency);
}

TEST(FlovRestricted, AdjacentRoutersNeverBothSleep) {
  Harness h(FlovMode::kRestricted);
  // Gate two adjacent cores; only one may sleep (smaller id wins races).
  h.sys.set_core_gated(5, true, 0);
  h.sys.set_core_gated(6, true, 0);
  h.run(300);
  const bool s5 = h.state(5) == PowerState::kSleep;
  const bool s6 = h.state(6) == PowerState::kSleep;
  EXPECT_TRUE(s5 || s6);
  EXPECT_FALSE(s5 && s6) << "rFLOV slept two adjacent routers";
}

TEST(FlovRestricted, CheckerboardAllSleeps) {
  Harness h(FlovMode::kRestricted);
  // Non-adjacent set: 0, 2, 8, 10 (plus AON-excluded ones ignored).
  for (NodeId n : {0, 2, 8, 10}) h.sys.set_core_gated(n, true, 0);
  h.run(400);
  for (NodeId n : {0, 2, 8, 10}) {
    EXPECT_EQ(h.state(n), PowerState::kSleep) << n;
  }
}

TEST(FlovGeneralized, ConsecutiveRoutersSleep) {
  Harness h(FlovMode::kGeneralized);
  // A full run in a row: 4, 5, 6 (AON column 7 excluded).
  for (NodeId n : {4, 5, 6}) h.sys.set_core_gated(n, true, 0);
  h.run(600);
  for (NodeId n : {4, 5, 6}) {
    EXPECT_EQ(h.state(n), PowerState::kSleep) << n;
  }
}

TEST(FlovGeneralized, LogicalNeighborsUpdatedAcrossSleepingRun) {
  Harness h(FlovMode::kGeneralized);
  for (NodeId n : {5, 6}) h.sys.set_core_gated(n, true, 0);
  h.run(600);
  ASSERT_EQ(h.state(5), PowerState::kSleep);
  ASSERT_EQ(h.state(6), PowerState::kSleep);
  // Router 4's logical East neighbor must now be the AON router 7.
  EXPECT_EQ(h.sys.network().router(4).view().logical[dir_index(Direction::East)],
            7);
  // And router 7's logical West neighbor must be 4.
  EXPECT_EQ(h.sys.network().router(7).view().logical[dir_index(Direction::West)],
            4);
}

TEST(FlovFsm, DrainAbortsWhenCoreReactivatesQuickly) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  // Let it reach Draining, then flip the core back on.
  for (int i = 0; i < 500 && h.state(5) != PowerState::kDraining; ++i) {
    h.run(1);
  }
  ASSERT_EQ(h.state(5), PowerState::kDraining);
  h.sys.set_core_gated(5, false, h.now);
  h.run(50);
  EXPECT_EQ(h.state(5), PowerState::kActive);
  EXPECT_EQ(h.sys.hsc(5).sleep_entries(), 0u);
  EXPECT_GE(h.sys.hsc(5).drain_aborts(), 1u);
}

TEST(FlovFsm, PacketToSleepingDestinationWakesIt) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  ASSERT_EQ(h.state(5), PowerState::kSleep);
  // Send a packet to the sleeping core; hold-for-wakeup must wake router 5
  // and deliver.
  h.sys.network().enqueue(pkt(4, 5));
  h.run(300);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].dest, 5);
  EXPECT_EQ(h.sys.hsc(5).wake_completions(), 1u);
}

TEST(FlovFsm, PacketAcrossSleepingRunToSleepingDestWakesOnlyDest) {
  Harness h(FlovMode::kGeneralized);
  for (NodeId n : {4, 5, 6}) h.sys.set_core_gated(n, true, 0);
  h.run(600);
  for (NodeId n : {4, 5, 6}) ASSERT_EQ(h.state(n), PowerState::kSleep) << n;
  // Packet from AON router 7 to router 4 (far end of the sleeping run):
  // destination 4 must wake; 5 and 6 stay asleep and fly the flits over.
  h.sys.network().enqueue(pkt(7, 4));
  h.run(400);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].dest, 4);
  EXPECT_GT(h.records[0].flov_hops, 0);
  EXPECT_EQ(h.state(5), PowerState::kSleep);
  EXPECT_EQ(h.state(6), PowerState::kSleep);
}

TEST(FlovFsm, SleepingRouterFliesTrafficOver) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  ASSERT_EQ(h.state(5), PowerState::kSleep);
  // 4 -> 6 crosses sleeping router 5 on a straight X path.
  h.sys.network().enqueue(pkt(4, 6));
  h.run(200);
  ASSERT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.records[0].flov_hops, 1);
  EXPECT_EQ(h.state(5), PowerState::kSleep);  // undisturbed
  EXPECT_GT(h.sys.network().router(5).flits_flown_over(), 0u);
}

TEST(FlovFsm, TrafficThroughDrainingRouterCompletesBeforeSleep) {
  Harness h(FlovMode::kGeneralized);
  // Keep a packet stream crossing router 5, then gate its core mid-stream.
  for (int i = 0; i < 10; ++i) h.sys.network().enqueue(pkt(4, 6));
  h.run(5);
  h.sys.set_core_gated(5, true, h.now);
  h.run(1500);
  EXPECT_EQ(h.records.size(), 10u);
  EXPECT_EQ(h.state(5), PowerState::kSleep);
}

TEST(FlovFsm, GatingTransitionsAreCountedForEnergy) {
  Harness h(FlovMode::kGeneralized);
  const auto before = h.sys.power().event_count(EnergyEvent::kPgTransition);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  EXPECT_EQ(h.sys.power().event_count(EnergyEvent::kPgTransition),
            before + 1);
}

TEST(FlovFsm, SimultaneousAdjacentDrainArbitratedBySmallerId) {
  Harness h(FlovMode::kRestricted);
  // Gate both at the same cycle; their drain attempts race repeatedly.
  h.sys.set_core_gated(9, true, 0);
  h.sys.set_core_gated(10, true, 0);
  h.run(60);
  // At any sampled point, never both asleep.
  for (int i = 0; i < 200; ++i) {
    h.run(1);
    const bool s9 = h.state(9) == PowerState::kSleep;
    const bool s10 = h.state(10) == PowerState::kSleep;
    ASSERT_FALSE(s9 && s10);
  }
}

TEST(FlovFsm, ReSleepAfterWakeup) {
  Harness h(FlovMode::kGeneralized);
  h.sys.set_core_gated(5, true, 0);
  h.run(100);
  ASSERT_EQ(h.state(5), PowerState::kSleep);
  // Wake via packet, then it should re-drain on its own (core still off).
  h.sys.network().enqueue(pkt(6, 5));
  h.run(600);
  EXPECT_EQ(h.records.size(), 1u);
  EXPECT_EQ(h.state(5), PowerState::kSleep);
  EXPECT_GE(h.sys.hsc(5).sleep_entries(), 2u);
}

TEST(FlovFsm, GatedCountReflectsSleepers) {
  Harness h(FlovMode::kGeneralized);
  for (NodeId n : {0, 5, 10}) h.sys.set_core_gated(n, true, 0);
  h.run(400);
  EXPECT_EQ(h.sys.gated_router_count(), 3);
}

class GFlovColumnRuns : public ::testing::TestWithParam<int> {};

TEST_P(GFlovColumnRuns, WholeColumnSleepsAndColumnTrafficDelivers) {
  const int col = GetParam();
  NocParams p = small_params();
  Harness h(FlovMode::kGeneralized, p);
  // Gate the whole column (4 routers); all should sleep in gFLOV.
  for (int y = 0; y < 4; ++y) {
    h.sys.set_core_gated(MeshGeometry(4, 4).id(col, y), true, 0);
  }
  h.run(800);
  int sleeping = 0;
  for (int y = 0; y < 4; ++y) {
    if (h.state(MeshGeometry(4, 4).id(col, y)) == PowerState::kSleep) {
      ++sleeping;
    }
  }
  EXPECT_EQ(sleeping, 4);
  // Row traffic flying across the sleeping column still delivers.
  const MeshGeometry g(4, 4);
  const NodeId west = g.id(col - 1, 1);
  const NodeId east = g.id(col + 1, 1);
  h.sys.network().enqueue(pkt(west, east));
  h.run(300);
  EXPECT_EQ(h.records.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Columns, GFlovColumnRuns, ::testing::Values(1, 2));

}  // namespace
}  // namespace flov
