// Property test for the complete FLOV routing pipeline at the algorithm
// level: over random power configurations (AON column on, destination on),
// walk a packet from every source to every destination applying the
// regular dynamic routing at powered routers and straight fly-over at
// sleeping ones (with escape-network fallback on dead-ends, as the router
// implements). Assert: the walk always terminates at the destination, never
// exits the mesh, never crosses a sleeping router in a dimension without
// FLOV links, and never U-turns in the regular network.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "routing/flov_routing.hpp"

namespace flov {
namespace {

struct Walker {
  Walker(const MeshGeometry& g, const std::vector<bool>& powered)
      : geom(g), powered(powered), routing(g) {}

  NeighborhoodView view_at(NodeId n) const {
    NeighborhoodView v;
    for (Direction d : kMeshDirections) {
      const NodeId nb = geom.neighbor(n, d);
      v.physical[dir_index(d)] =
          (nb != kInvalidNode && powered[nb]) ? PowerState::kActive
                                              : PowerState::kSleep;
      // Logical neighbor: nearest powered along d.
      NodeId cur = nb;
      while (cur != kInvalidNode && !powered[cur]) {
        cur = geom.neighbor(cur, d);
      }
      v.logical[dir_index(d)] = cur;
    }
    return v;
  }

  /// Returns hops taken; asserts invariants along the way.
  int walk(NodeId src, NodeId dest) {
    NodeId pos = src;
    Direction in_dir = Direction::Local;
    bool escape = false;
    int steps = 0;
    Flit f;
    f.head = true;
    f.src = src;
    f.dest = dest;
    while (pos != dest) {
      Direction out;
      if (powered[pos]) {
        const NeighborhoodView v = view_at(pos);
        const RouteContext ctx{pos, in_dir, &v};
        const RouteDecision dec = escape ? routing.escape_route(ctx, f)
                                         : routing.route(ctx, f);
        escape = escape || dec.escape;
        out = dec.out;
        EXPECT_NE(out, Direction::Local);
        if (!dec.escape) {
          EXPECT_NE(out, in_dir) << "regular-network U-turn at " << pos;
        }
      } else {
        // Sleeping router: straight fly-over; requires FLOV links in the
        // dimension of travel.
        out = opposite(in_dir);
        if (is_horizontal(out)) {
          EXPECT_TRUE(geom.has_both_horizontal_neighbors(pos))
              << "fly-over without X FLOV links at " << pos;
        } else {
          EXPECT_TRUE(geom.has_both_vertical_neighbors(pos))
              << "fly-over without Y FLOV links at " << pos;
        }
      }
      const NodeId next = geom.neighbor(pos, out);
      EXPECT_NE(next, kInvalidNode) << "walked off the mesh at " << pos;
      if (next == kInvalidNode) return -1;
      in_dir = opposite(out);
      pos = next;
      if (++steps > 6 * geom.num_nodes()) {
        ADD_FAILURE() << "walk did not terminate " << src << "->" << dest;
        return -1;
      }
    }
    return steps;
  }

  const MeshGeometry& geom;
  const std::vector<bool>& powered;
  FlovRouting routing;
};

using Param = std::tuple<int /*k*/, double /*gated*/, int /*seed*/>;

class RoutingWalk : public ::testing::TestWithParam<Param> {};

TEST_P(RoutingWalk, EveryPairReachableOverRandomPowerConfigs) {
  const int k = std::get<0>(GetParam());
  const double frac = std::get<1>(GetParam());
  const int seed = std::get<2>(GetParam());
  MeshGeometry g(k, k);
  Rng rng(9000 + seed);
  std::vector<bool> powered(g.num_nodes(), true);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.is_aon_column(n)) continue;  // AON column always on
    powered[n] = !rng.next_bool(frac);
  }
  Walker w(g, powered);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (!powered[s]) continue;  // gated cores do not inject
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      if (d == s || !powered[d]) continue;  // sleeping dests are woken first
      w.walk(s, d);
      if (::testing::Test::HasFailure()) {
        FAIL() << "walk failed for " << s << "->" << d;
      }
    }
  }
}

TEST_P(RoutingWalk, PathsAreNearMinimalAtLowGating) {
  const int k = std::get<0>(GetParam());
  const double frac = std::get<1>(GetParam());
  if (frac > 0.25) GTEST_SKIP() << "minimality bound only at low gating";
  const int seed = std::get<2>(GetParam());
  MeshGeometry g(k, k);
  Rng rng(7000 + seed);
  std::vector<bool> powered(g.num_nodes(), true);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_aon_column(n)) powered[n] = !rng.next_bool(frac);
  }
  Walker w(g, powered);
  double total = 0, minimal = 0;
  int pairs = 0;
  for (NodeId s = 0; s < g.num_nodes(); s += 3) {
    for (NodeId d = 0; d < g.num_nodes(); d += 2) {
      if (d == s || !powered[s] || !powered[d]) continue;
      const int steps = w.walk(s, d);
      ASSERT_GE(steps, 0);
      total += steps;
      minimal += g.hops(s, d);
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 0);
  // Best-effort minimal: average stretch stays small at low gating.
  EXPECT_LT(total / minimal, 1.25);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RoutingWalk,
    ::testing::Combine(::testing::Values(4, 6, 8),
                       ::testing::Values(0.15, 0.4, 0.7),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace flov
