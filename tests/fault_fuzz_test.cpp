// Fault-injection fuzz: gating churn + live uniform traffic on a lossy
// control fabric. Handshake signals are dropped / delayed / duplicated,
// flits are delayed on the wire, and spurious WakeupTriggers fire — while
// the invariant verifier proves conservation, credit and PSR coherence
// every cycle (fatal: any violation aborts the test).
//
// The recovery machinery under test: bounded handshake retries, wakeup
// trigger re-arming, sleep re-announcement heartbeats, stale blocked-flag
// expiry, and the scheme-level attempt_recovery escalation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_model.hpp"
#include "flov/flov_network.hpp"
#include "traffic/traffic_pattern.hpp"
#include "verify/invariant_verifier.hpp"

namespace flov {
namespace {

NocParams harden(NocParams p) {
  // Recovery knobs tuned for a lossy fabric (defaults keep the heartbeat
  // and block-expiry off for paper fidelity).
  p.width = 6;
  p.height = 6;
  p.drain_idle_threshold = 8;
  p.hs_retry_timeout = 32;
  p.hs_retry_limit = 16;
  p.trigger_retry_timeout = 64;
  p.sleep_reannounce_interval = 128;
  p.psr_block_timeout = 192;
  return p;
}

FaultParams lossy_signals(std::uint64_t seed) {
  FaultParams f;
  f.signal_drop_rate = 0.01;  // the ISSUE's headline fault rate
  f.signal_delay_rate = 0.02;
  f.signal_delay_max = 4;
  f.signal_dup_rate = 0.01;
  f.flit_delay_rate = 0.01;  // flit DROPS stay off: delivery must be exact
  f.flit_delay_max = 4;
  f.spurious_wakeup_rate = 0.0005;
  f.seed = seed;
  return f;
}

/// One churn episode under faults; returns the verifier so callers can
/// inspect counters. Asserts full delivery, quiescence and all-Active.
void run_churn(FlovMode mode, std::uint64_t seed, Cycle churn_cycles) {
  FlovNetwork sys(harden(NocParams{}), mode, EnergyParams{},
                  lossy_signals(seed));
  const MeshGeometry& g = sys.network().geom();

  VerifierOptions vo;
  vo.settle_window = 512;  // heals (retries, heartbeats) need headroom
  InvariantVerifier verifier(sys, vo);

  std::uint64_t delivered = 0;
  sys.network().set_eject_callback(
      [&](const PacketRecord&) { ++delivered; });

  Rng rng(9000 + seed);
  UniformPattern pattern(g);
  std::vector<bool> gated(g.num_nodes(), false);
  std::uint64_t generated = 0;
  Cycle now = 0;
  std::uint64_t last_delivered = 0;
  Cycle last_check = 0;
  bool recovery_armed = true;

  for (Cycle step = 0; step < churn_cycles; ++step) {
    if (rng.next_bool(1.0 / 150.0)) {
      const NodeId n = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      gated[n] = !gated[n];
      sys.set_core_gated(n, gated[n], now);
    }
    std::vector<bool> active(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) active[n] = !gated[n];
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (gated[s] || !rng.next_bool(0.01)) continue;
      const NodeId d = pattern.dest(s, active, rng);
      if (d == kInvalidNode) continue;
      PacketDescriptor pd;
      pd.src = s;
      pd.dest = d;
      pd.size_flits = 4;
      pd.gen_cycle = now;
      sys.network().enqueue(pd);
      ++generated;
    }
    sys.step(now);
    verifier.step(now);
    ++now;

    // Watchdog: one scheme-level recovery per stall episode; a stall that
    // survives the recovery is a failure (the "zero aborts" criterion).
    if (now - last_check >= 4000) {
      if (!sys.network().in_flight_empty() && delivered == last_delivered) {
        ASSERT_TRUE(recovery_armed)
            << "stall survived attempt_recovery at cycle " << now;
        sys.attempt_recovery(now);
        recovery_armed = false;
      } else {
        recovery_armed = true;
      }
      last_delivered = delivered;
      last_check = now;
    }
  }

  // Quiesce: all cores on, no new traffic; the fabric must fully drain AND
  // every router must complete its way back to Active, even though the
  // wind-down handshakes themselves run over lossy wires.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (gated[n]) sys.set_core_gated(n, false, now);
  }
  const auto settled = [&] {
    if (!sys.network().idle()) return false;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (sys.hsc(n).state() != PowerState::kActive) return false;
    }
    return true;
  };
  for (int i = 0; i < 20000 && !settled(); ++i) {
    sys.step(now);
    verifier.step(now);
    ++now;
  }
  if (!settled()) {
    sys.attempt_recovery(now);
    for (int i = 0; i < 20000 && !settled(); ++i) {
      sys.step(now);
      verifier.step(now);
      ++now;
    }
  }
  ASSERT_TRUE(sys.network().idle()) << "fabric failed to quiesce";
  verifier.final_check(now);

  EXPECT_EQ(delivered, generated);
  EXPECT_EQ(sys.network().total_injected_flits(),
            sys.network().total_ejected_flits());
  EXPECT_EQ(verifier.violations(), 0u);
  EXPECT_GT(verifier.checks_run(), 0u);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(sys.hsc(n).state(), PowerState::kActive) << n;
  }
}

using Param = std::tuple<FlovMode, int /*seed*/>;

class FaultFuzz : public ::testing::TestWithParam<Param> {};

TEST_P(FaultFuzz, ChurnSurvivesLossyControlFabric) {
  run_churn(std::get<0>(GetParam()),
            static_cast<std::uint64_t>(std::get<1>(GetParam())),
            /*churn_cycles=*/6000);
}

// 28 seeds x 2 modes = 56 fuzz runs (the ISSUE asks for >= 50).
INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultFuzz,
    ::testing::Combine(::testing::Values(FlovMode::kRestricted,
                                         FlovMode::kGeneralized),
                       ::testing::Range(1, 29)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param) == FlovMode::kRestricted
                             ? "rFLOV"
                             : "gFLOV") +
             "_s" + std::to_string(std::get<1>(info.param));
    });

// Flit drops are diagnostic-only faults (no retransmission layer), so
// delivery is not exact — but the verifier must still hold: conservation
// is dimensioned by the injector's drop counter, credits degrade to an
// upper bound, and the fabric must stay live and quiesce.
TEST(FaultFuzzFlitLoss, ConservationHoldsWithDroppedFlits) {
  NocParams p = harden(NocParams{});
  FaultParams f = lossy_signals(/*seed=*/77);
  f.flit_drop_rate = 0.002;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{}, f);
  const MeshGeometry& g = sys.network().geom();

  VerifierOptions vo;
  vo.settle_window = 512;
  InvariantVerifier verifier(sys, vo);

  Rng rng(4242);
  UniformPattern pattern(g);
  std::vector<bool> gated(g.num_nodes(), false);
  Cycle now = 0;
  for (Cycle step = 0; step < 6000; ++step) {
    if (rng.next_bool(1.0 / 150.0)) {
      const NodeId n = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      gated[n] = !gated[n];
      sys.set_core_gated(n, gated[n], now);
    }
    std::vector<bool> active(g.num_nodes());
    for (NodeId n = 0; n < g.num_nodes(); ++n) active[n] = !gated[n];
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      if (gated[s] || !rng.next_bool(0.01)) continue;
      const NodeId d = pattern.dest(s, active, rng);
      if (d == kInvalidNode) continue;
      PacketDescriptor pd;
      pd.src = s;
      pd.dest = d;
      pd.size_flits = 4;
      pd.gen_cycle = now;
      sys.network().enqueue(pd);
    }
    sys.step(now);
    verifier.step(now);
    ++now;
  }
  ASSERT_GT(sys.fault_injector()->counters().flits_dropped, 0u)
      << "fault rate too low to exercise the drop path";
  EXPECT_EQ(verifier.violations(), 0u);
}

}  // namespace
}  // namespace flov
