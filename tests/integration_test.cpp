// End-to-end integration tests: synthetic traffic over every scheme with
// power-gated cores. Parameterized sweeps check delivery, conservation,
// deadlock-freedom, and the scheme-specific invariants the paper relies on.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "flov/flov_network.hpp"
#include "rp/rp_network.hpp"
#include "sim/experiment.hpp"
#include "traffic/gating_scenario.hpp"
#include "traffic/traffic_pattern.hpp"

namespace flov {
namespace {

SyntheticExperimentConfig base_config() {
  SyntheticExperimentConfig c;
  c.noc.width = 8;
  c.noc.height = 8;
  c.warmup = 2000;
  c.measure = 6000;
  c.inj_rate_flits = 0.02;
  c.watchdog = 30000;
  return c;
}

using SweepParam = std::tuple<Scheme, double /*gated*/, int /*seed*/>;

class SchemeGatingSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SchemeGatingSweep, DeliversEverythingWithoutDeadlock) {
  auto [scheme, gated, seed] = GetParam();
  SyntheticExperimentConfig c = base_config();
  c.scheme = scheme;
  c.gated_fraction = gated;
  c.seed = seed;
  const RunResult r = run_synthetic(c);
  EXPECT_GT(r.packets_generated, 0u);
  // Conservation: every injected flit was ejected or is still in flight in
  // a live network; after the run most traffic must be through (>=95%).
  EXPECT_GE(r.ejected_flits + 200, r.injected_flits);
  EXPECT_GT(r.packets_measured, 0u);
  EXPECT_GT(r.avg_latency, 0.0);
  // No breakdown component exceeds the total.
  EXPECT_LE(r.breakdown.router, r.avg_latency + 1e-6);
  EXPECT_LE(r.breakdown.contention, r.avg_latency + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchemeGatingSweep,
    ::testing::Combine(::testing::Values(Scheme::kBaseline, Scheme::kRp,
                                         Scheme::kRFlov, Scheme::kGFlov),
                       ::testing::Values(0.0, 0.2, 0.5, 0.8),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

class PatternSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PatternSweep, GFlovDeliversAllPatterns) {
  SyntheticExperimentConfig c = base_config();
  c.scheme = Scheme::kGFlov;
  c.pattern = GetParam();
  c.gated_fraction = 0.4;
  const RunResult r = run_synthetic(c);
  EXPECT_GT(r.packets_measured, 0u);
  EXPECT_GE(r.ejected_flits + 200, r.injected_flits);
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternSweep,
                         ::testing::Values("uniform", "tornado", "transpose",
                                           "bitcomplement", "neighbor",
                                           "hotspot"));

TEST(Integration, FlovLatencyBeatsRpUnderGating) {
  // The paper's headline latency claim at a moderate gating fraction.
  SyntheticExperimentConfig c = base_config();
  c.measure = 20000;
  c.gated_fraction = 0.4;
  c.scheme = Scheme::kRp;
  const double rp = run_synthetic(c).avg_latency;
  c.scheme = Scheme::kGFlov;
  const double gflov = run_synthetic(c).avg_latency;
  c.scheme = Scheme::kRFlov;
  const double rflov = run_synthetic(c).avg_latency;
  EXPECT_LT(gflov, rp);
  EXPECT_LT(rflov, rp);
}

TEST(Integration, GFlovStaticPowerBelowRpAndBaseline) {
  SyntheticExperimentConfig c = base_config();
  c.measure = 20000;
  c.gated_fraction = 0.5;
  c.scheme = Scheme::kBaseline;
  const double base = run_synthetic(c).power.static_mw;
  c.scheme = Scheme::kRp;
  const double rp = run_synthetic(c).power.static_mw;
  c.scheme = Scheme::kGFlov;
  const double gflov = run_synthetic(c).power.static_mw;
  EXPECT_LT(gflov, rp);
  EXPECT_LT(rp, base);
}

TEST(Integration, GFlovGatesEveryNonAonGatedCore) {
  SyntheticExperimentConfig c = base_config();
  c.gated_fraction = 0.5;
  c.scheme = Scheme::kGFlov;
  c.inj_rate_flits = 0.0;  // quiet network gates everything promptly
  const RunResult r = run_synthetic(c);
  // 32 gated cores; only those in the AON column cannot gate.
  const GatingScenario s = GatingScenario::uniform_fraction(
      MeshGeometry(8, 8), 0.5, c.seed);
  int expected = 0;
  MeshGeometry g(8, 8);
  for (NodeId n = 0; n < 64; ++n) {
    if (s.events()[0].gated[n] && !g.is_aon_column(n)) ++expected;
  }
  EXPECT_EQ(r.gated_routers_end, expected);
}

TEST(Integration, RFlovNeverSleepsAdjacentRouters) {
  NocParams p;
  p.width = 8;
  p.height = 8;
  FlovNetwork sys(p, FlovMode::kRestricted, EnergyParams{});
  MeshGeometry g(8, 8);
  const auto scen = GatingScenario::uniform_fraction(g, 0.7, 3);
  for (NodeId n = 0; n < 64; ++n) {
    if (scen.events()[0].gated[n]) sys.set_core_gated(n, true, 0);
  }
  Cycle now = 0;
  for (int i = 0; i < 5000; ++i) {
    sys.step(now++);
    if (i % 64 != 0) continue;
    for (NodeId n = 0; n < 64; ++n) {
      if (sys.hsc(n).state() != PowerState::kSleep) continue;
      for (Direction d : kMeshDirections) {
        const NodeId nb = g.neighbor(n, d);
        if (nb == kInvalidNode) continue;
        ASSERT_NE(sys.hsc(nb).state(), PowerState::kSleep)
            << "adjacent sleepers " << n << "," << nb << " at " << now;
      }
    }
  }
}

TEST(Integration, CreditConservationAfterDrainGFlov) {
  // After traffic drains, every powered router's output credits must be
  // back at full availability w.r.t. its logical neighbor's buffers.
  NocParams p;
  p.width = 8;
  p.height = 8;
  FlovNetwork sys(p, FlovMode::kGeneralized, EnergyParams{});
  MeshGeometry g(8, 8);
  const auto scen = GatingScenario::uniform_fraction(g, 0.4, 5);
  for (NodeId n = 0; n < 64; ++n) {
    if (scen.events()[0].gated[n]) sys.set_core_gated(n, true, 0);
  }
  Cycle now = 0;
  auto run = [&](int k) {
    for (int i = 0; i < k; ++i) sys.step(now++);
  };
  run(2000);
  // Random traffic burst.
  Rng rng(9);
  std::vector<bool> active(64);
  for (NodeId n = 0; n < 64; ++n) active[n] = !sys.core_gated(n);
  UniformPattern pat(g);
  for (int i = 0; i < 500; ++i) {
    const NodeId s = rng.next_below(64);
    if (!active[s]) continue;
    const NodeId d = pat.dest(s, active, rng);
    if (d == kInvalidNode) continue;
    PacketDescriptor pd;
    pd.src = s;
    pd.dest = d;
    pd.size_flits = 4;
    sys.network().enqueue(pd);
  }
  run(8000);
  ASSERT_TRUE(sys.network().idle());
  // Check: every pipeline router's mesh output credits equal the logical
  // downstream's buffer depth (all buffers empty when idle).
  for (NodeId n = 0; n < 64; ++n) {
    const Router& r = sys.network().router(n);
    if (r.mode() != RouterMode::kPipeline) continue;
    for (Direction d : kMeshDirections) {
      if (r.view().logical[dir_index(d)] == kInvalidNode) continue;
      // Skip if the logical neighbor is mid-transition.
      if (sys.hsc(r.view().logical[dir_index(d)]).state() !=
          PowerState::kActive) {
        continue;
      }
      for (const auto& ovc : r.output_port(d).vcs) {
        EXPECT_EQ(ovc.credits, p.buffer_depth)
            << "router " << n << " dir " << to_string(d);
        EXPECT_FALSE(ovc.allocated);
      }
    }
  }
}

TEST(Integration, Fig10TimelineShowsRpSpikesAndNotGFlov) {
  SyntheticExperimentConfig c = base_config();
  c.measure = 38000;
  c.gated_fraction = 0.1;
  c.gating_changes = {20000, 30000};
  c.timeline_window = 1000;
  c.scheme = Scheme::kRp;
  const RunResult rp = run_synthetic(c);
  c.scheme = Scheme::kGFlov;
  const RunResult gf = run_synthetic(c);
  ASSERT_FALSE(rp.timeline.empty());
  ASSERT_FALSE(gf.timeline.empty());
  double rp_peak = 0, gf_peak = 0;
  for (const auto& pt : rp.timeline) rp_peak = std::max(rp_peak, pt.mean);
  for (const auto& pt : gf.timeline) gf_peak = std::max(gf_peak, pt.mean);
  // RP's reconfiguration stall produces a queuing spike well above
  // anything gFLOV experiences.
  EXPECT_GT(rp_peak, 2.0 * gf_peak);
}

}  // namespace
}  // namespace flov
