// Ops-plane tests: the PR-level invariants from docs/OBSERVABILITY.md.
//
//   * Read-only: a run with the ops plane attached produces byte-identical
//     results (metrics registry, manifest) to the same run without it.
//   * Deterministic snapshots: the final fold of a run is byte-identical
//     across threads=1/N and any tiles= grid; campaign snapshots converge
//     to the same final document for any completion-callback order.
//   * Live surface: every endpoint answers — both through the socketless
//     handle() dispatch and over a real TCP round-trip on an ephemeral
//     port — with schema-tagged payloads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "sim/experiment.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/ops/ops_plane.hpp"
#include "telemetry/ops/profile.hpp"
#include "telemetry/ops/snapshot.hpp"

namespace flov {
namespace {

using ops::OpsOptions;
using ops::OpsPlane;
using ops::OpsSnapshot;
using telemetry::JsonValue;

SyntheticExperimentConfig small_run() {
  SyntheticExperimentConfig ex;
  ex.noc.width = 4;
  ex.noc.height = 4;
  ex.scheme = Scheme::kGFlov;
  ex.inj_rate_flits = 0.05;
  ex.gated_fraction = 0.4;
  ex.warmup = 500;
  ex.measure = 3000;
  ex.seed = 7;
  return ex;
}

OpsOptions plain_options() {
  OpsOptions opt;
  opt.period = 512;
  // profile=1 makes any() true without needing a server or stream file;
  // the profiler itself never influences results.
  opt.profile = true;
  return opt;
}

/// Renders the run's manifest the way flov_sim_cli does, minus the
/// volatile wall clock, so two runs can be compared byte-for-byte.
std::string manifest_bytes(const RunResult& r) {
  telemetry::RunManifest m;
  m.name = "ops_test";
  m.scheme = r.scheme;
  m.seed = 7;
  m.wall_seconds = 0.0;
  m.metrics = r.metrics.get();
  m.incidents = r.incidents.get();
  return m.to_json();
}

// A run with the ops plane folding snapshots every 512 cycles must leave
// every result byte — including the manifest — exactly as a plain run
// does. This is the "observability is read-only" contract.
TEST(OpsPlane, ManifestByteIdenticalWithOpsAttached) {
  SyntheticExperimentConfig plain = small_run();
  const RunResult r_plain = run_synthetic(plain);

  OpsPlane plane(plain_options());
  SyntheticExperimentConfig with_ops = small_run();
  with_ops.ops = &plane;
  const RunResult r_ops = run_synthetic(with_ops);

  EXPECT_EQ(manifest_bytes(r_plain), manifest_bytes(r_ops));
  EXPECT_EQ(r_plain.packets_measured, r_ops.packets_measured);
  EXPECT_EQ(r_plain.ejected_flits, r_ops.ejected_flits);
  EXPECT_DOUBLE_EQ(r_plain.avg_latency, r_ops.avg_latency);

  // The plane did publish along the way.
  auto snap = plane.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_GT(snap->seq, 0u);
}

// The final snapshot is a pure function of (config, seed, cycle): stepping
// with one thread, several threads, or an explicit 2x2 tile grid must all
// publish the same bytes.
TEST(OpsPlane, FinalSnapshotIdenticalAcrossThreadsAndTiles) {
  std::string reference;
  const struct {
    int threads;
    int tiles_x, tiles_y;
  } grids[] = {{1, 0, 0}, {4, 0, 0}, {4, 2, 2}};
  for (const auto& g : grids) {
    OpsPlane plane(plain_options());
    SyntheticExperimentConfig ex = small_run();
    ex.noc.step_threads = g.threads;
    ex.noc.step_tiles_x = g.tiles_x;
    ex.noc.step_tiles_y = g.tiles_y;
    ex.ops = &plane;
    run_synthetic(ex);
    auto snap = plane.snapshot();
    ASSERT_NE(snap, nullptr);
    const std::string bytes = snap->to_json();
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(reference, bytes)
          << "threads=" << g.threads << " tiles=" << g.tiles_x << "x"
          << g.tiles_y;
    }
  }
  // Sanity: the reference snapshot is a well-formed run-mode document.
  const JsonValue v = JsonValue::parse(reference);
  EXPECT_EQ(v.at("schema").str, "flyover-snapshot-v1");
  EXPECT_EQ(static_cast<int>(v.at("width").num), 4);
  ASSERT_TRUE(v.has("nodes"));
  EXPECT_EQ(v.at("nodes").at("mode").arr.size(), 16u);
  EXPECT_EQ(v.at("nodes").at("latency_sum").arr.size(), 16u);
}

// Endpoint payloads through the socketless dispatch used by the HTTP
// thread: schema tags, prometheus families, 404 shape.
TEST(OpsPlane, EndpointPayloads) {
  OpsPlane plane(plain_options());
  SyntheticExperimentConfig ex = small_run();
  ex.ops = &plane;
  run_synthetic(ex);

  const auto metrics = plane.handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE flyover_cycle gauge"),
            std::string::npos);
  for (const char* series :
       {"flyover_snapshot_seq", "flyover_injected_flits_total",
        "flyover_gated_routers", "flyover_latency_hist_overflow_total",
        "flyover_incidents_total", "flyover_hard_fault_incidents_total",
        "flyover_watchdog_stall_incidents_total", "flyover_stalled"}) {
    EXPECT_NE(metrics.body.find(series), std::string::npos) << series;
  }

  const auto snapshot = plane.handle("/snapshot");
  EXPECT_EQ(JsonValue::parse(snapshot.body).at("schema").str,
            "flyover-snapshot-v1");

  const auto heatmap = plane.handle("/heatmap");
  const JsonValue h = JsonValue::parse(heatmap.body);
  EXPECT_EQ(h.at("schema").str, "flyover-heatmap-v1");
  EXPECT_EQ(h.at("grids").at("occupancy").arr.size(), 4u);

  const auto healthz = plane.handle("/healthz");
  const JsonValue hz = JsonValue::parse(healthz.body);
  EXPECT_EQ(hz.at("schema").str, "flyover-healthz-v1");
  EXPECT_EQ(hz.at("status").str, "ok");
  EXPECT_TRUE(hz.at("incidents").has("hard_fault_summary"));

  const auto missing = plane.handle("/nope");
  EXPECT_EQ(missing.status, 404);
}

/// Minimal HTTP GET against 127.0.0.1:port; returns the full response.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// Real TCP round-trip on an ephemeral port.
TEST(OpsPlane, HttpServerRoundTrip) {
  OpsOptions opt = plain_options();
  opt.serve_port = 0;  // ephemeral
  OpsPlane plane(opt);
  ASSERT_TRUE(plane.serving());
  ASSERT_GT(plane.http_port(), 0);

  SyntheticExperimentConfig ex = small_run();
  ex.ops = &plane;
  run_synthetic(ex);

  const std::string resp = http_get(plane.http_port(), "/healthz");
  ASSERT_NE(resp.find("HTTP/1.0 200"), std::string::npos) << resp;
  const std::size_t body_at = resp.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const JsonValue hz = JsonValue::parse(resp.substr(body_at + 4));
  EXPECT_EQ(hz.at("schema").str, "flyover-healthz-v1");

  const std::string notfound = http_get(plane.http_port(), "/nope");
  EXPECT_NE(notfound.find("HTTP/1.0 404"), std::string::npos);
}

// Campaign mode: out-of-order completion callbacks (jobs=N races) must
// never move the published done-count backwards, and the final snapshot
// is the same for any callback order.
TEST(OpsPlane, CampaignProgressIsMonotonic) {
  OpsPlane plane(plain_options());
  plane.begin_campaign("sweep", 8, "ckpt.jsonl");
  plane.campaign_progress(3);
  plane.campaign_progress(5);
  plane.campaign_progress(2);  // late straggler: ignored
  plane.campaign_progress(8);

  auto snap = plane.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->campaign);
  EXPECT_EQ(snap->points_done, 8u);
  EXPECT_EQ(snap->points_total, 8u);
  EXPECT_DOUBLE_EQ(snap->progress, 1.0);

  // Campaign snapshots carry no spatial grids; /heatmap declines.
  EXPECT_EQ(plane.handle("/heatmap").status, 404);
  const auto metrics = plane.handle("/metrics");
  EXPECT_NE(metrics.body.find("flyover_campaign_points_done 8"),
            std::string::npos);
  const JsonValue v = JsonValue::parse(plane.handle("/snapshot").body);
  EXPECT_EQ(v.at("campaign").at("checkpoint_path").str, "ckpt.jsonl");
}

// The profiler aggregates per-(domain, phase) and reports a parseable
// flyover-profile-v1 document whether or not the FLOV_PROFILE hook points
// were compiled in.
TEST(PhaseProfiler, ReportShapesAndImbalance) {
  telemetry::PhaseProfiler prof;
  prof.ensure_domains(2);
  prof.add(0, telemetry::ProfilePhase::kRoute, 1000);
  prof.add(0, telemetry::ProfilePhase::kBarrier, 500);
  prof.add(1, telemetry::ProfilePhase::kRoute, 4000);

  const auto report = prof.report();
  ASSERT_EQ(report.domains.size(), 2u);
  EXPECT_EQ(report.domains[0].busy_ns(), 1000u);  // barrier excluded
  EXPECT_EQ(report.domains[1].busy_ns(), 4000u);
  EXPECT_DOUBLE_EQ(report.busy_imbalance(), 4.0);
  EXPECT_EQ(report.merged.total_ns(), 5500u);

  const JsonValue v = JsonValue::parse(prof.report_json());
  EXPECT_EQ(v.at("schema").str, "flyover-profile-v1");
  EXPECT_EQ(static_cast<int>(v.at("num_domains").num), 2);
  EXPECT_DOUBLE_EQ(v.at("busy_imbalance").num, 4.0);
  EXPECT_EQ(v.at("merged").at("route").at("calls").num, 2.0);
}

// ProfileScope binding: timers only charge a bound profiler, and the
// previous binding is restored on scope exit.
TEST(PhaseProfiler, ScopeBindingIsScoped) {
  telemetry::PhaseProfiler prof;
  prof.ensure_domains(1);
  {
    telemetry::ProfileScope scope(&prof, 0);
    EXPECT_EQ(telemetry::thread_profile_state().profiler, &prof);
  }
  EXPECT_EQ(telemetry::thread_profile_state().profiler, nullptr);
}

}  // namespace
}  // namespace flov
